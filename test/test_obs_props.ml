(* Property-based lockdown of the tracing layer: the ring buffer's
   drop-oldest discipline, per-source stamp monotonicity, exact
   attribution totals, and — the load-bearing invariant — that
   attaching a trace sink leaves simulated cycle counts bit-identical
   on randomized programs.  Randomness comes from the explicit seed in
   [Qcheck_seed], printed on failure for exact replay. *)

module F = Firmware
module A = Allocator

(* -------------------------------------------------------------------- *)
(* Ring buffer: newer events are never dropped for older ones.          *)

let gen_ring = QCheck.Gen.(pair (int_range 1 32) (int_range 0 100))

let prop_ring_keeps_newest =
  QCheck.Test.make ~name:"ring buffer retains exactly the newest events"
    ~count:200
    (QCheck.make
       ~print:(fun (cap, n) -> Printf.sprintf "cap=%d n=%d" cap n)
       gen_ring)
    (fun (cap, n) ->
      let t = Obs.create ~capacity:cap () in
      for i = 0 to n - 1 do
        Obs.emit t ~cycle:i (Obs.Instr_sample { instret = i })
      done;
      let kept = min n cap in
      let evs = Obs.events t in
      Obs.total t = n
      && Obs.length t = kept
      && Obs.dropped t = n - kept
      && List.length evs = kept
      (* the retained window is exactly the emission suffix, in order *)
      && List.for_all2
           (fun e i -> e.Obs.cycle = i)
           evs
           (List.init kept (fun j -> n - kept + j)))

(* -------------------------------------------------------------------- *)
(* Randomized programs on a real system, with or without a sink.        *)

let firmware () =
  System.image ~name:"obs-props"
    ~sealed_objects:[ A.alloc_capability ~name:"q" ~quota:16384 ]
    ~threads:
      [ F.thread ~name:"main" ~comp:"app" ~entry:"main" ~stack_size:2048 () ]
    [
      F.compartment "app" ~globals_size:32
        ~entries:[ F.entry "main" ~arity:0 ~min_stack:512 ]
        ~imports:
          (A.client_imports @ Scheduler.client_imports
          @ [ F.Static_sealed { target = "q" } ]);
    ]

let quota ctx =
  let l = Loader.find_comp (Kernel.loader ctx.Kernel.kernel) "app" in
  Machine.load_cap (Kernel.machine ctx.Kernel.kernel)
    ~auth:l.Loader.lc_import_cap
    ~addr:(Loader.import_slot_addr l (Loader.import_slot l "sealed:q"))

type op = Alloc of int | Free of int | Sleep of int | Yield | Sweep

let gen_ops =
  QCheck.Gen.(
    list_size (int_range 5 40)
      (frequency
         [
           (4, map (fun s -> Alloc (8 + (s mod 500))) nat);
           (3, map (fun i -> Free i) (int_bound 15));
           (2, map (fun n -> Sleep (1_000 + (n mod 50_000))) nat);
           (2, return Yield);
           (1, return Sweep);
         ]))

let print_ops ops =
  String.concat ";"
    (List.map
       (function
         | Alloc n -> Printf.sprintf "A%d" n
         | Free i -> Printf.sprintf "F%d" i
         | Sleep n -> Printf.sprintf "S%d" n
         | Yield -> "Y"
         | Sweep -> "W")
       ops)

(* Run [ops] on a fresh system; returns the final simulated cycle count
   and the trace (empty when no sink was attached).  [forensics]
   additionally attaches a flight recorder, [profiled] a profiler (each
   independent of the trace ring). *)
let run_program ?(forensics = false) ?profiled ~traced ops =
  let machine = Machine.create () in
  let obs = if traced then Some (Obs.create ()) else None in
  Machine.set_trace machine obs;
  if forensics then Machine.set_forensics machine (Some (Forensics.create ()));
  (match profiled with
  | Some mode -> Machine.set_profiler machine (Some (Profiler.create ~mode ()))
  | None -> ());
  let sys = Result.get_ok (System.boot ~machine (firmware ())) in
  Kernel.implement1 sys.System.kernel ~comp:"app" ~entry:"main" (fun ctx _ ->
      let q = quota ctx in
      let live = ref [] in
      let nth i =
        List.nth_opt !live (if !live = [] then 0 else i mod List.length !live)
      in
      List.iter
        (fun op ->
          match op with
          | Alloc size -> (
              match A.allocate ctx ~alloc_cap:q size with
              | Ok c -> live := c :: !live
              | Error _ -> ())
          | Free i -> (
              match nth i with
              | Some c -> (
                  match A.free ctx ~alloc_cap:q c with
                  | Ok () -> live := List.filter (fun c' -> c' != c) !live
                  | Error _ -> ())
              | None -> ())
          | Sleep n -> Kernel.sleep ctx n
          | Yield -> Kernel.yield ctx
          | Sweep ->
              Machine.revoker_kick machine;
              Machine.run_revoker_to_completion machine)
        ops;
      Capability.null);
  System.run ~until_cycles:4_000_000_000 sys;
  ( Machine.cycles machine,
    (match obs with None -> [] | Some o -> Obs.events o),
    machine )

let prop_stamps_monotone_per_source =
  QCheck.Test.make ~name:"cycle stamps are monotone per source" ~count:15
    (QCheck.make ~print:print_ops gen_ops)
    (fun ops ->
      let _, evs, _ = run_program ~traced:true ops in
      let by_source = Hashtbl.create 8 in
      List.iter
        (fun e ->
          let src = Obs.source_of e.Obs.kind in
          let prev = Option.value ~default:0 (Hashtbl.find_opt by_source src) in
          if e.Obs.cycle < prev then failwith ("stamp regression in " ^ src);
          Hashtbl.replace by_source src e.Obs.cycle)
        evs;
      evs <> [])

let prop_attribution_totals_exact =
  QCheck.Test.make
    ~name:"attribution fold totals exactly equal machine cycles" ~count:15
    (QCheck.make ~print:print_ops gen_ops)
    (fun ops ->
      let cycles, evs, _ = run_program ~traced:true ops in
      let attributed = Obs.attribute ~total_cycles:cycles evs in
      let sum = List.fold_left (fun a (_, n) -> a + n) 0 attributed in
      sum = cycles && List.for_all (fun (_, n) -> n > 0) attributed)

let prop_tracing_invisible =
  QCheck.Test.make
    ~name:"simulated cycles bit-identical with tracing on vs off" ~count:15
    (QCheck.make ~print:print_ops gen_ops)
    (fun ops ->
      let on, _, _ = run_program ~traced:true ops in
      let off, _, _ = run_program ~traced:false ops in
      on = off)

let prop_forensics_invisible =
  QCheck.Test.make
    ~name:"simulated cycles bit-identical with the flight recorder attached"
    ~count:15
    (QCheck.make ~print:print_ops gen_ops)
    (fun ops ->
      let on, _, _ = run_program ~traced:true ~forensics:true ops in
      let off, _, _ = run_program ~traced:false ops in
      on = off)

(* The profiler mirrors the invisibility contract — attached alone
   (no trace ring), it must not move a single simulated cycle. *)
let prop_profiler_invisible =
  QCheck.Test.make
    ~name:"simulated cycles bit-identical with the profiler attached"
    ~count:15
    (QCheck.make ~print:print_ops gen_ops)
    (fun ops ->
      let on, _, _ = run_program ~traced:false ~profiled:Profiler.Exact ops in
      let off, _, _ = run_program ~traced:false ops in
      on = off)

(* Exact-attribution reconciliation: the folded stacks partition machine
   cycles exactly, and the per-leaf sums equal Obs.attribute's totals
   label for label (the profiler is the attribution fold with stack
   context). *)
let prop_profile_reconciles =
  QCheck.Test.make
    ~name:"exact profile reconciles with cycles and the attribution fold"
    ~count:15
    (QCheck.make ~print:print_ops gen_ops)
    (fun ops ->
      let cycles, evs, machine =
        run_program ~traced:true ~profiled:Profiler.Exact ops
      in
      let prof = Option.get (Machine.profiler machine) in
      let fold = Profiler.folded prof ~total_cycles:cycles in
      let weight = List.fold_left (fun a (_, w) -> a + w) 0 fold in
      let leaf key =
        match List.rev (String.split_on_char ';' key) with
        | l :: _ -> l
        | [] -> key
      in
      let by_leaf = Hashtbl.create 8 in
      List.iter
        (fun (k, w) ->
          let l = leaf k in
          Hashtbl.replace by_leaf l
            (w + Option.value (Hashtbl.find_opt by_leaf l) ~default:0))
        fold;
      let attrib = Obs.attribute ~total_cycles:cycles evs in
      weight = cycles
      && List.for_all
           (fun (label, n) ->
             Option.value (Hashtbl.find_opt by_leaf label) ~default:0 = n)
           attrib
      && Hashtbl.length by_leaf = List.length attrib)

(* Sampled mode: the total weight is exactly cycles/interval — the
   sample clock is the simulated clock, so sampling is deterministic. *)
let prop_sampled_weight =
  QCheck.Test.make
    ~name:"sampled profile weight is exactly cycles/interval" ~count:10
    (QCheck.make
       ~print:(fun (n, ops) -> Printf.sprintf "interval=%d %s" n (print_ops ops))
       QCheck.Gen.(pair (int_range 2 10_000) gen_ops))
    (fun (n, ops) ->
      let cycles, _, machine =
        run_program ~traced:false ~profiled:(Profiler.Sampled n) ops
      in
      let prof = Option.get (Machine.profiler machine) in
      Profiler.total_weight prof ~total_cycles:cycles = cycles / n)

let suite =
  [
    Qcheck_seed.to_alcotest prop_ring_keeps_newest;
    Qcheck_seed.to_alcotest prop_stamps_monotone_per_source;
    Qcheck_seed.to_alcotest prop_attribution_totals_exact;
    Qcheck_seed.to_alcotest prop_tracing_invisible;
    Qcheck_seed.to_alcotest prop_forensics_invisible;
    Qcheck_seed.to_alcotest prop_profiler_invisible;
    Qcheck_seed.to_alcotest prop_profile_reconciles;
    Qcheck_seed.to_alcotest prop_sampled_weight;
  ]

let () = Alcotest.run "cheriot_obs_props" [ ("trace-properties", suite) ]
