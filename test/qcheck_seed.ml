(* Shared seeding for the property-test suites: every QCheck test draws
   from an explicit [Random.State] built from one seed, so runs are
   reproducible by default and any failure prints the seed to re-run
   with [QCHECK_SEED=<seed> dune runtest].

   Each test derives its own independent state from (seed, test name)
   rather than sharing one stream: the draws a test sees then depend
   only on the seed and its name — not on which other tests ran, in what
   order, or on which domain — so results are identical whether suites
   run sequentially or farmed in parallel. *)

let seed =
  match Option.bind (Sys.getenv_opt "QCHECK_SEED") int_of_string_opt with
  | Some n -> n
  | None -> 0xc4e71057

let rand_for name = Random.State.make [| seed; Hashtbl.hash name |]

let to_alcotest test =
  let test_name =
    match test with QCheck2.Test.Test cell -> QCheck2.Test.get_name cell
  in
  let name, speed, run =
    QCheck_alcotest.to_alcotest ~rand:(rand_for test_name) test
  in
  ( name,
    speed,
    fun () ->
      try run ()
      with e ->
        Printf.eprintf
          "\n[qcheck] random seed was %d — reproduce with QCHECK_SEED=%d\n%!"
          seed seed;
        raise e )
