(* Shared seeding for the property-test suites: every QCheck test draws
   from an explicit [Random.State] built from one seed, so runs are
   reproducible by default and any failure prints the seed to re-run
   with [QCHECK_SEED=<seed> dune runtest]. *)

let seed =
  match Option.bind (Sys.getenv_opt "QCHECK_SEED") int_of_string_opt with
  | Some n -> n
  | None -> 0xc4e71057

let rand () = Random.State.make [| seed |]

let to_alcotest test =
  let name, speed, run = QCheck_alcotest.to_alcotest ~rand:(rand ()) test in
  ( name,
    speed,
    fun () ->
      try run ()
      with e ->
        Printf.eprintf
          "\n[qcheck] random seed was %d — reproduce with QCHECK_SEED=%d\n%!"
          seed seed;
        raise e )
