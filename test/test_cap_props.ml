(* Property-based tests of the capability algebra (§2.1): every
   derivation chain is monotone — bounds only narrow, permissions only
   shrink, and no sequence of operations (including a seal/unseal
   round-trip or a load-time attenuation) ever regains authority. *)

module Cap = Capability

let root =
  Cap.make_root ~base:0x2000_0000 ~top:0x2000_4000 ~perms:Perm.Set.universe

(* A derivation step, driven by generator-supplied integers that are
   folded into (mostly) legal parameters; illegal ones exercise the
   refusal paths and leave the chain where it was. *)
type op =
  | Narrow of int * int  (** move cursor, then set_bounds *)
  | Mask of int  (** and_perms with this bitmask *)
  | Move of int  (** reposition the cursor *)

let pp_op = function
  | Narrow (a, b) -> Printf.sprintf "N(%d,%d)" a b
  | Mask m -> Printf.sprintf "M(0x%x)" m
  | Move a -> Printf.sprintf "V(%d)" a

let gen_ops =
  QCheck.Gen.(
    list_size (int_range 1 30)
      (frequency
         [
           (3, map2 (fun a b -> Narrow (a, b)) nat nat);
           (2, map (fun m -> Mask m) (int_bound 0xfff));
           (2, map (fun a -> Move a) nat);
         ]))

let arb_ops =
  QCheck.make
    ~print:(fun ops -> String.concat ";" (List.map pp_op ops))
    gen_ops

let apply c = function
  | Narrow (a, b) -> (
      let len = Cap.length c in
      let off = if len = 0 then 0 else a mod (len + 1) in
      match Cap.with_address c (Cap.base c + off) with
      | Error _ -> c
      | Ok c' -> (
          let room = Cap.top c' - Cap.address c' in
          let l = if room <= 0 then 0 else b mod (room + 1) in
          match Cap.set_bounds c' ~length:l with Error _ -> c' | Ok r -> r))
  | Mask m -> (
      match Cap.and_perms c (Perm.Set.of_bits m) with
      | Error _ -> c
      | Ok r -> r)
  | Move a -> (
      let len = Cap.length c in
      let off = if len = 0 then 0 else a mod len in
      match Cap.with_address c (Cap.base c + off) with Error _ -> c | Ok r -> r)

let narrower ~than:c c' =
  Cap.base c' >= Cap.base c
  && Cap.top c' <= Cap.top c
  && Perm.Set.subset (Cap.perms c') (Cap.perms c)

let prop_chain_monotone =
  QCheck.Test.make ~name:"derivation chains never widen bounds or perms"
    ~count:500 arb_ops (fun ops ->
      let rec go c = function
        | [] -> true
        | op :: rest ->
            let c' = apply c op in
            narrower ~than:c c' && narrower ~than:root c' && go c' rest
      in
      go root ops)

let prop_set_bounds_exact =
  QCheck.Test.make ~name:"set_bounds is exact and contained or refuses"
    ~count:500
    QCheck.(pair (int_bound 0x7fff) (int_bound 0x7fff))
    (fun (a, b) ->
      match Cap.with_address root (0x2000_0000 + a) with
      | Error _ -> a >= 0x4000 (* only an out-of-bounds cursor may refuse *)
      | Ok c -> (
          match Cap.set_bounds c ~length:b with
          | Error _ -> Cap.address c + b > Cap.top c
          | Ok r ->
              Cap.base r = Cap.address c
              && Cap.top r = Cap.address c + b
              && Cap.top r <= Cap.top root))

let prop_and_perms_is_intersection =
  QCheck.Test.make ~name:"and_perms computes exact intersections" ~count:500
    QCheck.(pair (int_bound 0xffff) (int_bound 0xffff))
    (fun (m1, m2) ->
      let s1 = Perm.Set.of_bits m1 and s2 = Perm.Set.of_bits m2 in
      match Cap.and_perms root s1 with
      | Error _ -> false
      | Ok c1 -> (
          match Cap.and_perms c1 s2 with
          | Error _ -> false
          | Ok c2 -> Perm.Set.equal (Cap.perms c2) (Perm.Set.inter s1 s2)))

let prop_attenuate_loaded_monotone =
  QCheck.Test.make
    ~name:"load-time attenuation only removes permissions" ~count:500
    QCheck.(pair (int_bound 0xffff) (int_bound 0xffff))
    (fun (am, lm) ->
      let auth = Cap.exn (Cap.and_perms root (Perm.Set.of_bits am)) in
      let loaded = Cap.exn (Cap.and_perms root (Perm.Set.of_bits lm)) in
      let att = Cap.attenuate_loaded ~auth loaded in
      Perm.Set.subset (Cap.perms att) (Cap.perms loaded)
      && (Perm.Set.mem Perm.Load_mutable (Cap.perms auth)
         || not (Perm.Set.mem Perm.Store (Cap.perms att)))
      && (Perm.Set.mem Perm.Load_global (Cap.perms auth)
         || not (Perm.Set.mem Perm.Global (Cap.perms att))))

let prop_seal_roundtrip_preserves =
  QCheck.Test.make
    ~name:"seal/unseal round-trips without gaining authority" ~count:500
    QCheck.(pair (int_bound 100) (int_bound 0xffff))
    (fun (ot_seed, m) ->
      let key_root =
        Cap.make_sealing_root ~first:Cap.Otype.data_first
          ~last:Cap.Otype.data_last
      in
      let ot =
        Cap.Otype.data_first
        + (ot_seed mod (Cap.Otype.data_last - Cap.Otype.data_first + 1))
      in
      let key = Cap.exn (Cap.with_address key_root ot) in
      let c = Cap.exn (Cap.and_perms root (Perm.Set.of_bits m)) in
      match Cap.seal ~key c with
      | Error _ -> false
      | Ok s -> (
          Cap.is_sealed s
          &&
          match Cap.unseal ~key s with
          | Error _ -> false
          | Ok u ->
              Cap.base u = Cap.base c
              && Cap.top u = Cap.top c
              && Perm.Set.equal (Cap.perms u) (Cap.perms c)
              && not (Cap.is_sealed u)))

let suite =
  List.map Qcheck_seed.to_alcotest
    [
      prop_chain_monotone;
      prop_set_bounds_exact;
      prop_and_perms_is_intersection;
      prop_attenuate_loaded_monotone;
      prop_seal_roundtrip_preserves;
    ]

let () = Alcotest.run "cheriot_cap_props" [ ("capability-algebra", suite) ]
