(* Property-based tests of the capability algebra (§2.1): every
   derivation chain is monotone — bounds only narrow, permissions only
   shrink, and no sequence of operations (including a seal/unseal
   round-trip or a load-time attenuation) ever regains authority. *)

module Cap = Capability

let root =
  Cap.make_root ~base:0x2000_0000 ~top:0x2000_4000 ~perms:Perm.Set.universe

(* A derivation step, driven by generator-supplied integers that are
   folded into (mostly) legal parameters; illegal ones exercise the
   refusal paths and leave the chain where it was. *)
type op =
  | Narrow of int * int  (** move cursor, then set_bounds *)
  | Mask of int  (** and_perms with this bitmask *)
  | Move of int  (** reposition the cursor *)

let pp_op = function
  | Narrow (a, b) -> Printf.sprintf "N(%d,%d)" a b
  | Mask m -> Printf.sprintf "M(0x%x)" m
  | Move a -> Printf.sprintf "V(%d)" a

let gen_ops =
  QCheck.Gen.(
    list_size (int_range 1 30)
      (frequency
         [
           (3, map2 (fun a b -> Narrow (a, b)) nat nat);
           (2, map (fun m -> Mask m) (int_bound 0xfff));
           (2, map (fun a -> Move a) nat);
         ]))

let arb_ops =
  QCheck.make
    ~print:(fun ops -> String.concat ";" (List.map pp_op ops))
    gen_ops

let apply c = function
  | Narrow (a, b) -> (
      let len = Cap.length c in
      let off = if len = 0 then 0 else a mod (len + 1) in
      match Cap.with_address c (Cap.base c + off) with
      | Error _ -> c
      | Ok c' -> (
          let room = Cap.top c' - Cap.address c' in
          let l = if room <= 0 then 0 else b mod (room + 1) in
          match Cap.set_bounds c' ~length:l with Error _ -> c' | Ok r -> r))
  | Mask m -> (
      match Cap.and_perms c (Perm.Set.of_bits m) with
      | Error _ -> c
      | Ok r -> r)
  | Move a -> (
      let len = Cap.length c in
      let off = if len = 0 then 0 else a mod len in
      match Cap.with_address c (Cap.base c + off) with Error _ -> c | Ok r -> r)

let narrower ~than:c c' =
  Cap.base c' >= Cap.base c
  && Cap.top c' <= Cap.top c
  && Perm.Set.subset (Cap.perms c') (Cap.perms c)

let prop_chain_monotone =
  QCheck.Test.make ~name:"derivation chains never widen bounds or perms"
    ~count:500 arb_ops (fun ops ->
      let rec go c = function
        | [] -> true
        | op :: rest ->
            let c' = apply c op in
            narrower ~than:c c' && narrower ~than:root c' && go c' rest
      in
      go root ops)

let prop_set_bounds_exact =
  QCheck.Test.make ~name:"set_bounds is exact and contained or refuses"
    ~count:500
    QCheck.(pair (int_bound 0x7fff) (int_bound 0x7fff))
    (fun (a, b) ->
      match Cap.with_address root (0x2000_0000 + a) with
      | Error _ -> a >= 0x4000 (* only an out-of-bounds cursor may refuse *)
      | Ok c -> (
          match Cap.set_bounds c ~length:b with
          | Error _ -> Cap.address c + b > Cap.top c
          | Ok r ->
              Cap.base r = Cap.address c
              && Cap.top r = Cap.address c + b
              && Cap.top r <= Cap.top root))

let prop_and_perms_is_intersection =
  QCheck.Test.make ~name:"and_perms computes exact intersections" ~count:500
    QCheck.(pair (int_bound 0xffff) (int_bound 0xffff))
    (fun (m1, m2) ->
      let s1 = Perm.Set.of_bits m1 and s2 = Perm.Set.of_bits m2 in
      match Cap.and_perms root s1 with
      | Error _ -> false
      | Ok c1 -> (
          match Cap.and_perms c1 s2 with
          | Error _ -> false
          | Ok c2 -> Perm.Set.equal (Cap.perms c2) (Perm.Set.inter s1 s2)))

let prop_attenuate_loaded_monotone =
  QCheck.Test.make
    ~name:"load-time attenuation only removes permissions" ~count:500
    QCheck.(pair (int_bound 0xffff) (int_bound 0xffff))
    (fun (am, lm) ->
      let auth = Cap.exn (Cap.and_perms root (Perm.Set.of_bits am)) in
      let loaded = Cap.exn (Cap.and_perms root (Perm.Set.of_bits lm)) in
      let att = Cap.attenuate_loaded ~auth loaded in
      Perm.Set.subset (Cap.perms att) (Cap.perms loaded)
      && (Perm.Set.mem Perm.Load_mutable (Cap.perms auth)
         || not (Perm.Set.mem Perm.Store (Cap.perms att)))
      && (Perm.Set.mem Perm.Load_global (Cap.perms auth)
         || not (Perm.Set.mem Perm.Global (Cap.perms att))))

let prop_seal_roundtrip_preserves =
  QCheck.Test.make
    ~name:"seal/unseal round-trips without gaining authority" ~count:500
    QCheck.(pair (int_bound 100) (int_bound 0xffff))
    (fun (ot_seed, m) ->
      let key_root =
        Cap.make_sealing_root ~first:Cap.Otype.data_first
          ~last:Cap.Otype.data_last
      in
      let ot =
        Cap.Otype.data_first
        + (ot_seed mod (Cap.Otype.data_last - Cap.Otype.data_first + 1))
      in
      let key = Cap.exn (Cap.with_address key_root ot) in
      let c = Cap.exn (Cap.and_perms root (Perm.Set.of_bits m)) in
      match Cap.seal ~key c with
      | Error _ -> false
      | Ok s -> (
          Cap.is_sealed s
          &&
          match Cap.unseal ~key s with
          | Error _ -> false
          | Ok u ->
              Cap.base u = Cap.base c
              && Cap.top u = Cap.top c
              && Perm.Set.equal (Cap.perms u) (Cap.perms c)
              && not (Cap.is_sealed u)))

(* ---- packed representation ({!Packed_cap}) ------------------------ *)

(* The interpreter's hot loop works on the flat packed encoding; these
   properties pin the two contracts DESIGN.md states: pack/unpack is an
   exact bijection, and every in-place derivation helper agrees with
   the boxed [Capability] operation it mirrors — same success results,
   same violations, including when dst aliases src. *)

module Pk = Packed_cap

let sentries =
  [
    Cap.Otype.Call_inherit;
    Cap.Otype.Call_disable;
    Cap.Otype.Call_enable;
    Cap.Otype.Return_disable;
    Cap.Otype.Return_enable;
  ]

(* Build a capability from five generator seeds, covering the
   representation's corners: tagged and untagged, unsealed / sentry /
   data-sealed, zero-length, empty and full permission sets, cursor
   out of bounds (legal for unsealed capabilities). *)
let build_cap (base_s, len_s, perm_s, cur_s, shape) =
  let base = 0x2000_0000 + (base_s land 0xfff) * 4 in
  let len = if shape mod 5 = 0 then 0 else len_s land 0xfff in
  let perms =
    match perm_s mod 7 with
    | 0 -> Perm.Set.universe
    | 1 -> Perm.Set.of_bits 0
    | _ -> Perm.Set.of_bits (perm_s land 0xfff)
  in
  let root = Cap.make_root ~base ~top:(base + len) ~perms in
  let c = Cap.with_address_unsealed root (base + (cur_s mod (len + 17)) - 8) in
  match shape mod 4 with
  | 0 -> c
  | 1 -> Cap.clear_tag c
  | 2 -> (
      (* sentry: needs Execute and an in-bounds cursor; keep [c] when
         sealing refuses so refusal corners stay in the distribution *)
      match Cap.seal_entry c (List.nth sentries (len_s mod 5)) with
      | Ok s -> s
      | Error _ -> c)
  | _ -> (
      let ot =
        Cap.Otype.data_first
        + (cur_s mod (Cap.Otype.data_last - Cap.Otype.data_first + 1))
      in
      let key =
        Cap.with_address_unsealed
          (Cap.make_sealing_root ~first:Cap.Otype.data_first
             ~last:Cap.Otype.data_last)
          ot
      in
      match Cap.seal ~key c with Ok s -> s | Error _ -> c)

let arb_cap =
  QCheck.make
    ~print:(fun seeds -> Cap.to_string (build_cap seeds))
    QCheck.Gen.(
      map
        (fun (a, b, (c, d, e)) -> (a, b, c, d, e))
        (triple nat nat (triple nat nat nat)))

let prop_pack_unpack_bijection =
  QCheck.Test.make ~name:"packed: unpack (pack c) = c; register 0 is inert"
    ~count:1000 arb_cap (fun seeds ->
      let c = build_cap seeds in
      let pk = Pk.make 2 in
      Pk.pack pk 1 c;
      Cap.equal (Pk.unpack pk 1) c
      (* register 0 discards writes and always reads NULL *)
      && (Pk.pack pk 0 c;
          Cap.equal (Pk.unpack pk 0) Cap.null)
      (* the meta word round-trips through the architectural encoding *)
      && Cap.equal
           (Cap.of_meta ~meta:(Cap.meta c) ~base:(Cap.base c)
              ~top:(Cap.top c) ~cursor:(Cap.address c))
           c)

(* One in-place helper application, driven by generator seeds. *)
type pkop =
  | PIncr of int
  | PSetAddr of int  (** base-relative target *)
  | PSetBounds of int
  | PAndPerms of int
  | PClearTag
  | PSeal of int  (** key-cursor offset around the data-otype range *)
  | PUnseal of int
  | PSealEntry of int

let pp_pkop = function
  | PIncr d -> Printf.sprintf "incr %d" d
  | PSetAddr d -> Printf.sprintf "setaddr %+d" d
  | PSetBounds l -> Printf.sprintf "setbounds %d" l
  | PAndPerms m -> Printf.sprintf "andperms 0x%x" m
  | PClearTag -> "cleartag"
  | PSeal k -> Printf.sprintf "seal key+%d" k
  | PUnseal k -> Printf.sprintf "unseal key+%d" k
  | PSealEntry k -> Printf.sprintf "sealentry %d" k

let build_pkop (k, arg) =
  match k mod 8 with
  | 0 -> PIncr ((arg land 0x7ff) - 0x400)
  | 1 -> PSetAddr ((arg land 0x1fff) - 0x100)
  | 2 -> PSetBounds ((arg land 0x1fff) - 8)
  | 3 -> PAndPerms (arg land 0xffff)
  | 4 -> PClearTag
  | 5 -> PSeal (arg mod 11)
  | 6 -> PUnseal (arg mod 11)
  | _ -> PSealEntry (arg mod 5)

(* A key whose cursor lands in (and just outside) the data-otype range,
   so both the success path and the otype/bounds refusals are hit. *)
let seal_key off =
  Cap.with_address_unsealed
    (Cap.make_sealing_root ~first:Cap.Otype.data_first
       ~last:Cap.Otype.data_last)
    (Cap.Otype.data_first + off - 1)

let arb_pk_case =
  QCheck.make
    ~print:(fun (seeds, opseed, alias) ->
      Printf.sprintf "%s; %s; dst%s=src" (Cap.to_string (build_cap seeds))
        (pp_pkop (build_pkop opseed))
        (if alias then "" else "<>"))
    QCheck.Gen.(
      triple
        (map
           (fun (a, b, (c, d, e)) -> (a, b, c, d, e))
           (triple nat nat (triple nat nat nat)))
        (pair nat nat) bool)

let prop_packed_derivation_equiv =
  QCheck.Test.make
    ~name:"packed: every in-place helper agrees with the boxed operation"
    ~count:2000 arb_pk_case (fun (seeds, opseed, alias) ->
      let c = build_cap seeds in
      let op = build_pkop opseed in
      let pk = Pk.make 4 in
      Pk.pack pk 1 c;
      let src = 1 in
      let dst = if alias then 1 else 2 in
      (* (packed result code, what the boxed algebra says) *)
      let code, boxed =
        match op with
        | PIncr d -> (Pk.incr_addr pk ~dst ~src d, Cap.incr_address c d)
        | PSetAddr d -> (Pk.set_addr pk ~dst ~src (Cap.base c + d),
                         Cap.with_address c (Cap.base c + d))
        | PSetBounds l -> (Pk.set_bounds pk ~dst ~src l,
                           Cap.set_bounds c ~length:l)
        | PAndPerms m ->
            let s = Perm.Set.of_bits m in
            (Pk.and_perms pk ~dst ~src s, Cap.and_perms c s)
        | PClearTag ->
            Pk.clear_tag pk ~dst ~src;
            (Pk.ok, Ok (Cap.clear_tag c))
        | PSeal off ->
            let key = seal_key off in
            Pk.pack pk 3 key;
            (Pk.seal pk ~dst ~src ~key:3, Cap.seal ~key c)
        | PUnseal off ->
            let key = seal_key off in
            Pk.pack pk 3 key;
            (Pk.unseal pk ~dst ~src ~key:3, Cap.unseal ~key c)
        | PSealEntry k ->
            let kind = List.nth sentries k in
            ( Pk.seal_entry pk ~dst ~src (Cap.sentry_code kind),
              Cap.seal_entry c kind )
      in
      match boxed with
      | Ok r ->
          code = Pk.ok
          && Cap.equal (Pk.unpack pk dst) r
          (* a non-aliased source is left untouched *)
          && (alias || Cap.equal (Pk.unpack pk src) c)
      | Error v ->
          code <> Pk.ok
          && Pk.violation code = v
          (* on refusal the register file is unchanged (the interpreter
             traps before any write) *)
          && Cap.equal (Pk.unpack pk src) c)

let suite =
  List.map Qcheck_seed.to_alcotest
    [
      prop_chain_monotone;
      prop_set_bounds_exact;
      prop_and_perms_is_intersection;
      prop_attenuate_loaded_monotone;
      prop_seal_roundtrip_preserves;
      prop_pack_unpack_bijection;
      prop_packed_derivation_equiv;
    ]

let () = Alcotest.run "cheriot_cap_props" [ ("capability-algebra", suite) ]
