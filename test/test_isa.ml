(* Tests for the assembler and interpreter. *)

module Cap = Capability
open Isa

let code_base = 0x4000_0000

let setup prog_items =
  let m = Machine.create ~sram_size:(64 * 1024) () in
  let t = Interp.create m in
  let prog = assemble ~name:"test" prog_items in
  Interp.map_segment t ~base:code_base prog;
  let pcc =
    Cap.make_root ~base:code_base
      ~top:(code_base + Isa.code_bytes prog)
      ~perms:Perm.Set.executable
  in
  (m, t, pcc)

let sram_cap m =
  Cap.make_root ~base:(Machine.sram_base m)
    ~top:(Machine.sram_base m + Machine.sram_size m)
    ~perms:Perm.Set.universe

let check_halt what = function
  | Interp.Halted -> ()
  | Interp.Exited c -> Alcotest.failf "%s: exited to %s" what (Cap.to_string c)
  | Interp.Trapped tr -> Alcotest.failf "%s: %s" what (Fmt.str "%a" Interp.pp_trap tr)

let test_arith_loop () =
  (* Sum 1..10 with a loop. *)
  let items =
    [
      I (Li (ca0, 0));
      I (Li (ct0, 1));
      I (Li (ct1, 11));
      L "loop";
      I (Beq (ct0, ct1, "done"));
      I (Add (ca0, ca0, ct0));
      I (Addi (ct0, ct0, 1));
      I (J "loop");
      L "done";
      I Halt;
    ]
  in
  let _, t, pcc = setup items in
  check_halt "run" (Interp.run t pcc);
  Alcotest.(check int) "sum" 55 (Interp.to_int (Interp.get_reg t ca0))

let test_memory_instrs () =
  let items =
    [
      I (Li (ct0, 0xbeef));
      I (Sw (ct0, 16, ca0));
      I (Lw (ca1, 16, ca0));
      I (Csc (ca0, 24, ca0));
      I (Clc (ca2, 24, ca0));
      I Halt;
    ]
  in
  let m, t, pcc = setup items in
  Interp.set_reg t ca0 @@ sram_cap m;
  check_halt "run" (Interp.run t pcc);
  Alcotest.(check int) "loaded word" 0xbeef (Interp.to_int (Interp.get_reg t ca1));
  Alcotest.(check bool) "loaded cap tagged" true (Cap.tag (Interp.get_reg t ca2))

let test_cap_instrs () =
  let items =
    [
      I (Cincaddrimm (ca1, ca0, 128));
      I (Csetboundsimm (ca1, ca1, 64));
      I (Cgetbase (ca2, ca1));
      I (Cgetlen (ca3, ca1));
      I (Candperm (ca4, ca1, Perm.Set.to_bits Perm.Set.read_only));
      I (Cgetperm (ca5, ca4));
      I Halt;
    ]
  in
  let m, t, pcc = setup items in
  Interp.set_reg t ca0 @@ sram_cap m;
  check_halt "run" (Interp.run t pcc);
  Alcotest.(check int) "base" (Machine.sram_base m + 128) (Interp.to_int (Interp.get_reg t ca2));
  Alcotest.(check int) "len" 64 (Interp.to_int (Interp.get_reg t ca3));
  Alcotest.(check int) "perms" (Perm.Set.to_bits Perm.Set.read_only)
    (Interp.to_int (Interp.get_reg t ca5))

let test_trap_on_bad_access () =
  let items = [ I (Lw (ca1, 0, ca0)); I Halt ] in
  let _, t, pcc = setup items in
  (* ca0 is NULL: untagged. *)
  match Interp.run t pcc with
  | Interp.Trapped { tcause = Interp.Cap_fault Cap.Tag_violation; _ } -> ()
  | o ->
      Alcotest.failf "expected tag trap, got %s"
        (match o with
        | Interp.Halted -> "halt"
        | Interp.Exited _ -> "exit"
        | Interp.Trapped tr -> Fmt.str "%a" Interp.pp_trap tr)

let test_trap_on_widen () =
  let items = [ I (Csetboundsimm (ca1, ca0, 1 lsl 20)); I Halt ] in
  let m, t, pcc = setup items in
  Interp.set_reg t ca0 @@ sram_cap m;
  match Interp.run t pcc with
  | Interp.Trapped { tcause = Interp.Cap_fault Cap.Bounds_violation; _ } -> ()
  | _ -> Alcotest.fail "expected bounds trap"

let test_cjal_and_return () =
  let items =
    [
      I (Cjal (ra, "sub"));
      I (Li (ca1, 7));
      I Halt;
      L "sub";
      I (Li (ca0, 42));
      I (Cjalr (zero, ra));
    ]
  in
  let _, t, pcc = setup items in
  check_halt "run" (Interp.run t pcc);
  Alcotest.(check int) "sub ran" 42 (Interp.to_int (Interp.get_reg t ca0));
  Alcotest.(check int) "fallthrough ran" 7 (Interp.to_int (Interp.get_reg t ca1))

let test_sentry_posture () =
  (* Jump through an interrupt-disabling forward sentry; the backward
     sentry restores the enabled posture. *)
  let items =
    [
      I (Cjalr (ra, ct2));
      (* call through sentry in ct2 *)
      I Halt;
      L "handler";
      I (Cgetaddr (ca0, ra));
      I (Cjalr (zero, ra));
    ]
  in
  let m, t, pcc = setup items in
  let handler_addr = code_base + 8 in
  let handler =
    Cap.exn
      (Cap.seal_entry (Cap.with_address_exn pcc handler_addr) Cap.Otype.Call_disable)
  in
  Interp.set_reg t ct2 @@ handler;
  Machine.set_irq_enabled m true;
  check_halt "run" (Interp.run t pcc);
  Alcotest.(check bool) "posture restored" true (Machine.irq_enabled m)

let test_jump_to_data_sealed_traps () =
  let items = [ I (Cjalr (zero, ct2)); I Halt ] in
  let m, t, pcc = setup items in
  let key =
    Cap.with_address_exn
      (Cap.make_sealing_root ~first:Cap.Otype.data_first ~last:Cap.Otype.data_last)
      Cap.Otype.data_first
  in
  Interp.set_reg t ct2 @@ Cap.exn (Cap.seal ~key (sram_cap m));
  match Interp.run t pcc with
  | Interp.Trapped { tcause = Interp.Cap_fault Cap.Seal_violation; _ } -> ()
  | _ -> Alcotest.fail "expected seal trap"

let test_exit_to_native () =
  (* Jumping outside every segment exits the interpreter: the native
     trampoline mechanism used for compartment entry points. *)
  let items = [ I (Cjalr (ra, ct2)); I Halt ] in
  let _, t, pcc = setup items in
  let target =
    Cap.make_root ~base:0x5000_0000 ~top:0x5000_1000 ~perms:Perm.Set.executable
  in
  Interp.set_reg t ct2 @@ target;
  match Interp.run t pcc with
  | Interp.Exited c -> Alcotest.(check int) "target addr" 0x5000_0000 (Cap.address c)
  | _ -> Alcotest.fail "expected exit"

let test_specialrw_needs_sr () =
  let items = [ I (Cspecialrw (ca0, Isa.mtdc, zero)); I Halt ] in
  let _, t, pcc = setup items in
  (match Interp.run t pcc with
  | Interp.Trapped { tcause = Interp.Cap_fault (Cap.Permit_violation Perm.System_registers); _ } ->
      ()
  | _ -> Alcotest.fail "expected SR trap");
  (* With SR on the PCC it works. *)
  let m = Machine.create () in
  let t = Interp.create m in
  let prog = assemble ~name:"test" items in
  Interp.map_segment t ~base:code_base prog;
  let pcc =
    Cap.make_root ~base:code_base
      ~top:(code_base + Isa.code_bytes prog)
      ~perms:(Perm.Set.add Perm.System_registers Perm.Set.executable)
  in
  Interp.set_special t Isa.mtdc (sram_cap m);
  check_halt "privileged run" (Interp.run t pcc);
  Alcotest.(check bool) "read mtdc" true (Cap.tag (Interp.get_reg t ca0))

let test_instret_and_cycles () =
  let items = [ I (Li (ca0, 1)); I (Li (ca1, 2)); I Halt ] in
  let m, t, pcc = setup items in
  let c0 = Machine.cycles m in
  check_halt "run" (Interp.run t pcc);
  Alcotest.(check int) "instret" 3 (Interp.instret t);
  Alcotest.(check bool) "cycles charged" true (Machine.cycles m >= c0 + 3)

let test_fuel_exhaustion () =
  let items = [ L "spin"; I (J "spin"); I Halt ] in
  let _, t, pcc = setup items in
  match Interp.run ~fuel:100 t pcc with
  | Interp.Trapped { tcause = Interp.Software _; _ } -> ()
  | _ -> Alcotest.fail "expected fuel trap"

let test_assembler_errors () =
  (match assemble ~name:"bad" [ I (J "nowhere") ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "undefined label accepted");
  match assemble ~name:"bad" [ L "x"; L "x" ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate label accepted"


let test_auipcc () =
  (* PCC-relative address formation: rd gets the PCC with the cursor at
     the label, keeping the segment's bounds and permissions. *)
  let items =
    [
      I (Auipcc (ca0, "target"));
      I (Cgetaddr (ca1, ca0));
      I Halt;
      L "target";
      I Halt;
    ]
  in
  let _, t, pcc = setup items in
  check_halt "run" (Interp.run t pcc);
  Alcotest.(check int) "label address" (code_base + 12)
    (Interp.to_int (Interp.get_reg t ca1));
  Alcotest.(check bool) "bounds preserved" true
    (Cap.base (Interp.get_reg t ca0) = code_base)

let test_sentry_kinds_encode () =
  (* Csealentry with explicit kinds; Cgettype reports the encoding. *)
  let items =
    [
      I (Csealentry (ca1, ca0, Cap.Otype.Call_enable));
      I (Cgettype (ca2, ca1));
      I (Csealentry (ca3, ca0, Cap.Otype.Return_disable));
      I (Cgettype (ca4, ca3));
      I Halt;
    ]
  in
  let _, t, pcc = setup items in
  Interp.set_reg t ca0
    (Cap.make_root ~base:0x5000_0000 ~top:0x5000_1000 ~perms:Perm.Set.executable);
  check_halt "run" (Interp.run t pcc);
  Alcotest.(check int) "call-enable type" 3 (Interp.to_int (Interp.get_reg t ca2));
  Alcotest.(check int) "return-disable type" 4 (Interp.to_int (Interp.get_reg t ca4))

let test_backward_sentry_restores_posture () =
  (* Disable interrupts by calling through a Call_disable sentry, then
     return through the backward sentry: the enabled posture returns. *)
  let items =
    [
      I (Cjalr (ra, ct2));
      (* after return: capture posture via a flag in ca0 *)
      I Halt;
      L "disabled_code";
      I (Mv (ca1, ra));
      I (Cjalr (zero, ca1));
    ]
  in
  let m, t, pcc = setup items in
  Interp.set_reg t ct2
    (Cap.exn
       (Cap.seal_entry
          (Cap.with_address_exn pcc (code_base + 8))
          Cap.Otype.Call_disable));
  Machine.set_irq_enabled m true;
  check_halt "run" (Interp.run t pcc);
  Alcotest.(check bool) "posture restored after return" true (Machine.irq_enabled m)

let test_store_into_readonly_segment_data () =
  (* The executable PCC has no Store permission: writing through it
     traps (code is immutable at run time). *)
  let items = [ I (Sw (ca0, 0, ca1)); I Halt ] in
  let _, t, pcc = setup items in
  Interp.set_reg t ca1 @@ pcc;
  match Interp.run t pcc with
  | Interp.Trapped { tcause = Interp.Cap_fault (Cap.Permit_violation Perm.Store); _ } -> ()
  | _ -> Alcotest.fail "store through PCC allowed"


(* Property: the interpreter is total — arbitrary instruction sequences
   (over in-range registers/labels) either halt, trap, or run out of
   fuel, but never crash the host. *)
let gen_instr =
  QCheck.Gen.(
    let reg = int_bound 15 in
    let imm = int_range (-64) 64 in
    oneof
      [
        map2 (fun rd v -> Li (rd, v)) reg imm;
        map2 (fun rd rs -> Mv (rd, rs)) reg reg;
        map3 (fun rd rs v -> Addi (rd, rs, v)) reg reg imm;
        map3 (fun rd a b -> Add (rd, a, b)) reg reg reg;
        map3 (fun rd i rs -> Lw (rd, i * 4, rs)) reg (int_bound 8) reg;
        map3 (fun rs2 i rs1 -> Sw (rs2, i * 4, rs1)) reg (int_bound 8) reg;
        map3 (fun rd i rs -> Clc (rd, i * 8, rs)) reg (int_bound 4) reg;
        map2 (fun rd a -> Cincaddrimm (rd, a, 8)) reg reg;
        map2 (fun rd a -> Csetboundsimm (rd, a, 16)) reg reg;
        map2 (fun rd a -> Cgetaddr (rd, a)) reg reg;
        map2 (fun rd a -> Cgetlen (rd, a)) reg reg;
        map3 (fun rd a k -> Cseal (rd, a, k)) reg reg reg;
        map3 (fun rd a k -> Cunseal (rd, a, k)) reg reg reg;
        map2 (fun a b -> Beq (a, b, "out")) reg reg;
        map2 (fun rd rs -> Cjalr (rd, rs)) reg reg;
      ])

let prop_interp_total =
  QCheck.Test.make ~name:"interpreter is total on random programs" ~count:200
    (QCheck.make QCheck.Gen.(list_size (int_range 1 24) gen_instr))
    (fun instrs ->
      let items = List.map (fun i -> I i) instrs @ [ L "out"; I Halt ] in
      let m, t, pcc = setup items in
      Interp.set_reg t ca0 @@ sram_cap m;
      match Interp.run ~fuel:2_000 t pcc with
      | Interp.Halted | Interp.Trapped _ | Interp.Exited _ -> true)

let suite =
  [
    Alcotest.test_case "arith loop" `Quick test_arith_loop;
    Alcotest.test_case "memory instrs" `Quick test_memory_instrs;
    Alcotest.test_case "cap instrs" `Quick test_cap_instrs;
    Alcotest.test_case "trap on bad access" `Quick test_trap_on_bad_access;
    Alcotest.test_case "trap on widen" `Quick test_trap_on_widen;
    Alcotest.test_case "cjal/return" `Quick test_cjal_and_return;
    Alcotest.test_case "sentry posture" `Quick test_sentry_posture;
    Alcotest.test_case "data-sealed jump traps" `Quick test_jump_to_data_sealed_traps;
    Alcotest.test_case "exit to native" `Quick test_exit_to_native;
    Alcotest.test_case "specialrw needs SR" `Quick test_specialrw_needs_sr;
    Alcotest.test_case "instret/cycles" `Quick test_instret_and_cycles;
    Alcotest.test_case "fuel exhaustion" `Quick test_fuel_exhaustion;
    Alcotest.test_case "assembler errors" `Quick test_assembler_errors;
    Alcotest.test_case "auipcc" `Quick test_auipcc;
    Alcotest.test_case "sentry kinds" `Quick test_sentry_kinds_encode;
    Alcotest.test_case "backward sentry posture" `Quick test_backward_sentry_restores_posture;
    Alcotest.test_case "code immutable" `Quick test_store_into_readonly_segment_data;
    QCheck_alcotest.to_alcotest prop_interp_total;
  ]

let () = Alcotest.run "cheriot_isa" [ ("isa", suite) ]
