(* Equivalence lockdown for the decode-once interpreter front-end: on
   randomized programs, the pre-decoded engine and the legacy per-step
   fetch/decode path must agree on everything observable — final
   registers, instructions retired, simulated cycles, outcome (including
   trap cause and faulting PC) and the emitted trace event stream.  The
   golden-cycles files pin the real workloads; this suite explores the
   weird corners (bound-edge branches, traps mid-loop, fuel exhaustion,
   sentry jumps) the workloads never reach. *)

module Cap = Capability

let code_base = 0x4000_0000

(* ------------------------------------------------------------------ *)
(* Random program generation                                          *)
(* ------------------------------------------------------------------ *)

(* Registers 1..5 are scratch integers, 6 is a data capability over
   SRAM, 7 a deliberately narrow data capability, 8 a sentry back to the
   code segment.  Branch targets come from a fixed label pool placed at
   random positions, so [Isa.assemble] always validates. *)

let n_labels = 4

let gen_instr rng labels =
  let reg () = 1 + Random.State.int rng 5 in
  let label () = List.nth labels (Random.State.int rng (List.length labels)) in
  let small () = Random.State.int rng 64 - 8 in
  match Random.State.int rng 100 with
  | n when n < 10 -> Isa.Li (reg (), Random.State.int rng 1000)
  | n when n < 18 -> Isa.Addi (reg (), reg (), small ())
  | n when n < 24 -> Isa.Add (reg (), reg (), reg ())
  | n when n < 28 -> Isa.Sub (reg (), reg (), reg ())
  | n when n < 32 -> Isa.Andi (reg (), reg (), Random.State.int rng 255)
  | n when n < 36 -> Isa.Mv (reg (), reg ())
  | n when n < 44 -> Isa.Beq (reg (), reg (), label ())
  | n when n < 50 -> Isa.Bne (reg (), reg (), label ())
  | n when n < 54 -> Isa.Bltu (reg (), reg (), label ())
  | n when n < 58 -> Isa.Bgeu (reg (), reg (), label ())
  | n when n < 62 -> Isa.J (label ())
  | n when n < 68 ->
      (* mostly in-bounds loads/stores through r6; r7 is narrow, so the
         same offsets exercise the capability-fault path *)
      let auth = if Random.State.int rng 4 = 0 then 7 else 6 in
      Isa.Lw (reg (), 4 * Random.State.int rng 40, auth)
  | n when n < 74 ->
      let auth = if Random.State.int rng 4 = 0 then 7 else 6 in
      Isa.Sw (reg (), 4 * Random.State.int rng 40, auth)
  | n when n < 78 -> Isa.Cincaddrimm (reg (), 6, small ())
  | n when n < 81 -> Isa.Csetboundsimm (reg (), 6, Random.State.int rng 128)
  | n when n < 84 -> Isa.Cgetaddr (reg (), 6)
  | n when n < 86 -> Isa.Cgetlen (reg (), 7)
  | n when n < 88 -> Isa.Cgettag (reg (), reg ())
  | n when n < 90 -> Isa.Cgetperm (reg (), 6)
  | n when n < 92 -> Isa.Ccleartag (reg (), reg ())
  | n when n < 94 -> Isa.Cjal (reg (), label ())
  | n when n < 96 -> Isa.Auipcc (reg (), label ())
  | n when n < 97 -> Isa.Cjalr (reg (), 8)
  | n when n < 98 -> Isa.Trapif "generated"
  | _ -> Isa.Halt

let gen_program rng =
  let len = 8 + Random.State.int rng 32 in
  let labels = List.init n_labels (fun i -> Printf.sprintf "L%d" i) in
  (* Each label lands at a random instruction index. *)
  let label_at = Array.make len [] in
  List.iter
    (fun l ->
      let i = Random.State.int rng len in
      label_at.(i) <- l :: label_at.(i))
    labels;
  let items = ref [] in
  for i = len - 1 downto 0 do
    items := Isa.I (gen_instr rng labels) :: !items;
    List.iter (fun l -> items := Isa.L l :: !items) label_at.(i)
  done;
  (* Halt backstop so straight-line fall-through off the end (a legal
     Bounds trap) isn't the only way out. *)
  Isa.assemble ~name:"equiv" (!items @ [ Isa.I Isa.Halt ])

(* ------------------------------------------------------------------ *)
(* One run under either front-end                                     *)
(* ------------------------------------------------------------------ *)

type snapshot = {
  s_outcome : string;
  s_instret : int;
  s_cycles : int;
  s_regs : string list;
  s_events : string list;
}

let outcome_to_string = function
  | Interp.Halted -> "halted"
  | Interp.Exited c -> "exited " ^ Cap.to_string c
  | Interp.Trapped tr -> Fmt.str "%a" Interp.pp_trap tr

let run_one ~predecode ~fuel prog =
  let machine = Machine.create () in
  let obs = Obs.create () in
  Machine.set_trace machine (Some obs);
  let interp = Interp.create ~predecode machine in
  Interp.map_segment interp ~base:code_base prog;
  let sram = Machine.sram_base machine in
  (Interp.regs interp).(6) <-
    Cap.make_root ~base:sram ~top:(sram + 1024) ~perms:Perm.Set.read_write;
  (Interp.regs interp).(7) <-
    Cap.make_root ~base:(sram + 64) ~top:(sram + 96) ~perms:Perm.Set.read_write;
  let pcc =
    Cap.make_root ~base:code_base
      ~top:(code_base + Isa.code_bytes prog)
      ~perms:Perm.Set.executable
  in
  let entry = Cap.exn (Cap.seal_entry pcc Cap.Otype.Call_inherit) in
  (Interp.regs interp).(8) <- entry;
  let outcome = Interp.run ~fuel interp entry in
  {
    s_outcome = outcome_to_string outcome;
    s_instret = Interp.instret interp;
    s_cycles = Machine.cycles machine;
    s_regs = Array.to_list (Array.map Cap.to_string (Interp.regs interp));
    s_events = List.map (Fmt.str "%a" Obs.pp_event) (Obs.events obs);
  }

let check_equiv ?(fuel = 2_000) prog =
  let fast = run_one ~predecode:true ~fuel prog in
  let slow = run_one ~predecode:false ~fuel prog in
  let same l = String.concat "; " l in
  if fast.s_outcome <> slow.s_outcome then
    QCheck.Test.fail_reportf "outcome: %s vs %s" fast.s_outcome slow.s_outcome;
  if fast.s_instret <> slow.s_instret then
    QCheck.Test.fail_reportf "instret: %d vs %d" fast.s_instret slow.s_instret;
  if fast.s_cycles <> slow.s_cycles then
    QCheck.Test.fail_reportf "cycles: %d vs %d" fast.s_cycles slow.s_cycles;
  if fast.s_regs <> slow.s_regs then
    QCheck.Test.fail_reportf "registers:@.%s@.vs@.%s" (same fast.s_regs)
      (same slow.s_regs);
  if fast.s_events <> slow.s_events then
    QCheck.Test.fail_reportf "trace events:@.%s@.vs@.%s" (same fast.s_events)
      (same slow.s_events);
  true

(* ------------------------------------------------------------------ *)
(* Properties                                                         *)
(* ------------------------------------------------------------------ *)

let seed_gen = QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 0x3fffffff)

let prop_random_programs =
  QCheck.Test.make ~name:"pre-decoded == legacy on random programs" ~count:300
    seed_gen
    (fun s ->
      let rng = Random.State.make [| s; 0x5eed |] in
      check_equiv (gen_program rng))

let prop_fuel_exhaustion =
  QCheck.Test.make ~name:"pre-decoded == legacy at every fuel level" ~count:100
    (QCheck.pair seed_gen QCheck.(int_range 1 60))
    (fun (s, fuel) ->
      let rng = Random.State.make [| s; 0xf0e1 |] in
      check_equiv ~fuel (gen_program rng))

(* Hand-built corners the generator only rarely hits. *)

let test_bounds_fall_through () =
  (* Straight-line code running off the end of its segment must trap
     Bounds at the first address past it, identically in both engines. *)
  let prog =
    Isa.assemble ~name:"fall" [ Isa.I (Isa.Li (1, 1)); Isa.I (Isa.Li (2, 2)) ]
  in
  ignore (check_equiv prog)

let test_narrow_pcc () =
  (* A pcc narrower than the segment: the fast path's in-segment check
     passes but the pcc bounds check must still fire, with the same
     violation the legacy path reports. *)
  let prog =
    Isa.assemble ~name:"narrow"
      [
        Isa.I (Isa.Li (1, 1));
        Isa.I (Isa.Li (2, 2));
        Isa.I (Isa.Li (3, 3));
        Isa.I Isa.Halt;
      ]
  in
  let run predecode =
    let machine = Machine.create () in
    let interp = Interp.create ~predecode machine in
    Interp.map_segment interp ~base:code_base prog;
    let pcc =
      Cap.make_root ~base:code_base ~top:(code_base + 8)
        ~perms:Perm.Set.executable
    in
    let entry = Cap.exn (Cap.seal_entry pcc Cap.Otype.Call_inherit) in
    (outcome_to_string (Interp.run ~fuel:100 interp entry),
     Interp.instret interp, Machine.cycles machine)
  in
  Alcotest.(check (triple string int int))
    "narrow pcc agrees" (run false) (run true)

let test_jump_out_exits () =
  (* Cjalr to an address outside every segment leaves the interpreter
     (the kernel's native-trampoline convention). *)
  let prog =
    Isa.assemble ~name:"exit" [ Isa.I (Isa.Cjalr (1, 8)); Isa.I Isa.Halt ]
  in
  let run predecode =
    let machine = Machine.create () in
    let interp = Interp.create ~predecode machine in
    Interp.map_segment interp ~base:code_base prog;
    let sram = Machine.sram_base machine in
    let away =
      Cap.make_root ~base:sram ~top:(sram + 64) ~perms:Perm.Set.executable
    in
    (Interp.regs interp).(8) <-
      Cap.exn (Cap.seal_entry away Cap.Otype.Call_inherit);
    let pcc =
      Cap.make_root ~base:code_base
        ~top:(code_base + Isa.code_bytes prog)
        ~perms:Perm.Set.executable
    in
    let entry = Cap.exn (Cap.seal_entry pcc Cap.Otype.Call_inherit) in
    (outcome_to_string (Interp.run ~fuel:100 interp entry),
     Interp.instret interp)
  in
  Alcotest.(check (pair string int)) "exit agrees" (run false) (run true)

let () =
  Alcotest.run "cheriot_interp_equiv"
    [
      ( "equiv",
        [
          Qcheck_seed.to_alcotest prop_random_programs;
          Qcheck_seed.to_alcotest prop_fuel_exhaustion;
          Alcotest.test_case "bounds fall-through" `Quick
            test_bounds_fall_through;
          Alcotest.test_case "narrow pcc" `Quick test_narrow_pcc;
          Alcotest.test_case "jump out exits" `Quick test_jump_out_exits;
        ] );
    ]
