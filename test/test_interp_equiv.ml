(* Equivalence lockdown for the interpreter back-ends: on randomized
   programs, the pre-decoded and superblock-compiled engines must agree
   with the legacy per-step fetch/decode oracle on everything observable
   — final registers, instructions retired, simulated cycles, outcome
   (including trap cause and faulting PC) and the emitted trace event
   stream.  The golden-cycles files pin the real workloads; this suite
   explores the weird corners (bound-edge branches, traps mid-loop, fuel
   exhaustion, sentry jumps) the workloads never reach, plus the corners
   specific to superblock compilation: an IRQ firing mid-block, a fault
   injected mid-block by external hardware, fuel running out inside a
   block (forced side-exit), and filter-epoch invalidation between two
   executions of the same warm compiled block. *)

module Cap = Capability

let code_base = 0x4000_0000

let engine_name = function
  | `Legacy -> "legacy"
  | `Predecode -> "predecode"
  | `Superblock -> "superblock"

let fast_engines = [ `Predecode; `Superblock ]

(* ------------------------------------------------------------------ *)
(* Random program generation                                          *)
(* ------------------------------------------------------------------ *)

(* Registers 1..5 are scratch integers, 6 is a data capability over
   SRAM, 7 a deliberately narrow data capability, 8 a sentry back to the
   code segment.  Branch targets come from a fixed label pool placed at
   random positions, so [Isa.assemble] always validates. *)

let n_labels = 4

let gen_instr rng labels =
  let reg () = 1 + Random.State.int rng 5 in
  let label () = List.nth labels (Random.State.int rng (List.length labels)) in
  let small () = Random.State.int rng 64 - 8 in
  match Random.State.int rng 100 with
  | n when n < 10 -> Isa.Li (reg (), Random.State.int rng 1000)
  | n when n < 18 -> Isa.Addi (reg (), reg (), small ())
  | n when n < 24 -> Isa.Add (reg (), reg (), reg ())
  | n when n < 28 -> Isa.Sub (reg (), reg (), reg ())
  | n when n < 32 -> Isa.Andi (reg (), reg (), Random.State.int rng 255)
  | n when n < 36 -> Isa.Mv (reg (), reg ())
  | n when n < 44 -> Isa.Beq (reg (), reg (), label ())
  | n when n < 50 -> Isa.Bne (reg (), reg (), label ())
  | n when n < 54 -> Isa.Bltu (reg (), reg (), label ())
  | n when n < 58 -> Isa.Bgeu (reg (), reg (), label ())
  | n when n < 62 -> Isa.J (label ())
  | n when n < 68 ->
      (* mostly in-bounds loads/stores through r6; r7 is narrow, so the
         same offsets exercise the capability-fault path *)
      let auth = if Random.State.int rng 4 = 0 then 7 else 6 in
      Isa.Lw (reg (), 4 * Random.State.int rng 40, auth)
  | n when n < 74 ->
      let auth = if Random.State.int rng 4 = 0 then 7 else 6 in
      Isa.Sw (reg (), 4 * Random.State.int rng 40, auth)
  | n when n < 78 -> Isa.Cincaddrimm (reg (), 6, small ())
  | n when n < 81 -> Isa.Csetboundsimm (reg (), 6, Random.State.int rng 128)
  | n when n < 84 -> Isa.Cgetaddr (reg (), 6)
  | n when n < 86 -> Isa.Cgetlen (reg (), 7)
  | n when n < 88 -> Isa.Cgettag (reg (), reg ())
  | n when n < 90 -> Isa.Cgetperm (reg (), 6)
  | n when n < 92 -> Isa.Ccleartag (reg (), reg ())
  | n when n < 94 -> Isa.Cjal (reg (), label ())
  | n when n < 96 -> Isa.Auipcc (reg (), label ())
  | n when n < 97 -> Isa.Cjalr (reg (), 8)
  | n when n < 98 -> Isa.Trapif "generated"
  | _ -> Isa.Halt

let gen_program rng =
  let len = 8 + Random.State.int rng 32 in
  let labels = List.init n_labels (fun i -> Printf.sprintf "L%d" i) in
  (* Each label lands at a random instruction index. *)
  let label_at = Array.make len [] in
  List.iter
    (fun l ->
      let i = Random.State.int rng len in
      label_at.(i) <- l :: label_at.(i))
    labels;
  let items = ref [] in
  for i = len - 1 downto 0 do
    items := Isa.I (gen_instr rng labels) :: !items;
    List.iter (fun l -> items := Isa.L l :: !items) label_at.(i)
  done;
  (* Halt backstop so straight-line fall-through off the end (a legal
     Bounds trap) isn't the only way out. *)
  Isa.assemble ~name:"equiv" (!items @ [ Isa.I Isa.Halt ])

(* ------------------------------------------------------------------ *)
(* One run under any engine                                           *)
(* ------------------------------------------------------------------ *)

type snapshot = {
  s_outcome : string;
  s_instret : int;
  s_cycles : int;
  s_regs : string list;
  s_events : string list;
}

let outcome_to_string = function
  | Interp.Halted -> "halted"
  | Interp.Exited c -> "exited " ^ Cap.to_string c
  | Interp.Trapped tr -> Fmt.str "%a" Interp.pp_trap tr

let view machine obs interp outcome =
  {
    s_outcome = outcome_to_string outcome;
    s_instret = Interp.instret interp;
    s_cycles = Machine.cycles machine;
    s_regs = Array.to_list (Array.map Cap.to_string (Interp.read_regs interp));
    s_events = List.map (Fmt.str "%a" Obs.pp_event) (Obs.events obs);
  }

let run_one ~engine ~fuel prog =
  let machine = Machine.create () in
  let obs = Obs.create () in
  Machine.set_trace machine (Some obs);
  let interp = Interp.create ~engine machine in
  Interp.map_segment interp ~base:code_base prog;
  let sram = Machine.sram_base machine in
  Interp.set_reg interp 6
    @@ Cap.make_root ~base:sram ~top:(sram + 1024) ~perms:Perm.Set.read_write;
  Interp.set_reg interp 7
    @@ Cap.make_root ~base:(sram + 64) ~top:(sram + 96) ~perms:Perm.Set.read_write;
  let pcc =
    Cap.make_root ~base:code_base
      ~top:(code_base + Isa.code_bytes prog)
      ~perms:Perm.Set.executable
  in
  let entry = Cap.exn (Cap.seal_entry pcc Cap.Otype.Call_inherit) in
  Interp.set_reg interp 8 @@ entry;
  let outcome = Interp.run ~fuel interp entry in
  view machine obs interp outcome

let diff_views what oracle fast =
  let same l = String.concat "; " l in
  if fast.s_outcome <> oracle.s_outcome then
    QCheck.Test.fail_reportf "%s outcome: %s vs %s" what fast.s_outcome
      oracle.s_outcome;
  if fast.s_instret <> oracle.s_instret then
    QCheck.Test.fail_reportf "%s instret: %d vs %d" what fast.s_instret
      oracle.s_instret;
  if fast.s_cycles <> oracle.s_cycles then
    QCheck.Test.fail_reportf "%s cycles: %d vs %d" what fast.s_cycles
      oracle.s_cycles;
  if fast.s_regs <> oracle.s_regs then
    QCheck.Test.fail_reportf "%s registers:@.%s@.vs@.%s" what
      (same fast.s_regs) (same oracle.s_regs);
  if fast.s_events <> oracle.s_events then
    QCheck.Test.fail_reportf "%s trace events:@.%s@.vs@.%s" what
      (same fast.s_events) (same oracle.s_events)

let check_equiv ?(fuel = 2_000) prog =
  let oracle = run_one ~engine:`Legacy ~fuel prog in
  List.iter
    (fun engine ->
      diff_views (engine_name engine) oracle (run_one ~engine ~fuel prog))
    fast_engines;
  true

(* ------------------------------------------------------------------ *)
(* Properties                                                         *)
(* ------------------------------------------------------------------ *)

let seed_gen = QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 0x3fffffff)

let prop_random_programs =
  QCheck.Test.make
    ~name:"predecode == superblock == legacy on random programs" ~count:300
    seed_gen
    (fun s ->
      let rng = Random.State.make [| s; 0x5eed |] in
      check_equiv (gen_program rng))

let prop_fuel_exhaustion =
  QCheck.Test.make ~name:"all three engines agree at every fuel level"
    ~count:100
    (QCheck.pair seed_gen QCheck.(int_range 1 60))
    (fun (s, fuel) ->
      let rng = Random.State.make [| s; 0xf0e1 |] in
      check_equiv ~fuel (gen_program rng))

(* Hand-built corners the generator only rarely hits. *)

let test_bounds_fall_through () =
  (* Straight-line code running off the end of its segment must trap
     Bounds at the first address past it, identically in all engines. *)
  let prog =
    Isa.assemble ~name:"fall" [ Isa.I (Isa.Li (1, 1)); Isa.I (Isa.Li (2, 2)) ]
  in
  ignore (check_equiv prog)

let test_narrow_pcc () =
  (* A pcc narrower than the segment: the fast paths' in-segment check
     passes but the pcc bounds check must still fire, with the same
     violation the legacy path reports.  For the superblock engine the
     whole-block bounds precondition fails, forcing the side-exit. *)
  let prog =
    Isa.assemble ~name:"narrow"
      [
        Isa.I (Isa.Li (1, 1));
        Isa.I (Isa.Li (2, 2));
        Isa.I (Isa.Li (3, 3));
        Isa.I Isa.Halt;
      ]
  in
  let run engine =
    let machine = Machine.create () in
    let interp = Interp.create ~engine machine in
    Interp.map_segment interp ~base:code_base prog;
    let pcc =
      Cap.make_root ~base:code_base ~top:(code_base + 8)
        ~perms:Perm.Set.executable
    in
    let entry = Cap.exn (Cap.seal_entry pcc Cap.Otype.Call_inherit) in
    ( outcome_to_string (Interp.run ~fuel:100 interp entry),
      Interp.instret interp,
      Machine.cycles machine )
  in
  let oracle = run `Legacy in
  List.iter
    (fun engine ->
      Alcotest.(check (triple string int int))
        ("narrow pcc agrees: " ^ engine_name engine)
        oracle (run engine))
    fast_engines

let test_jump_out_exits () =
  (* Cjalr to an address outside every segment leaves the interpreter
     (the kernel's native-trampoline convention). *)
  let prog =
    Isa.assemble ~name:"exit" [ Isa.I (Isa.Cjalr (1, 8)); Isa.I Isa.Halt ]
  in
  let run engine =
    let machine = Machine.create () in
    let interp = Interp.create ~engine machine in
    Interp.map_segment interp ~base:code_base prog;
    let sram = Machine.sram_base machine in
    let away =
      Cap.make_root ~base:sram ~top:(sram + 64) ~perms:Perm.Set.executable
    in
    Interp.set_reg interp 8
      @@ Cap.exn (Cap.seal_entry away Cap.Otype.Call_inherit);
    let pcc =
      Cap.make_root ~base:code_base
        ~top:(code_base + Isa.code_bytes prog)
        ~perms:Perm.Set.executable
    in
    let entry = Cap.exn (Cap.seal_entry pcc Cap.Otype.Call_inherit) in
    (outcome_to_string (Interp.run ~fuel:100 interp entry),
     Interp.instret interp)
  in
  let oracle = run `Legacy in
  List.iter
    (fun engine ->
      Alcotest.(check (pair string int))
        ("exit agrees: " ^ engine_name engine)
        oracle (run engine))
    fast_engines

(* ------------------------------------------------------------------ *)
(* Superblock-specific corners: the tight loop is one compiled block   *)
(* (Addi; Sw; Lw; Bne), the shape the deferred batching and self-loop  *)
(* spinning optimize hardest, perturbed by exactly the events those    *)
(* optimizations must not distort.                                     *)
(* ------------------------------------------------------------------ *)

let loop_prog trips =
  Isa.assemble ~name:"tight"
    [
      Isa.I (Isa.Li (4, 0));
      Isa.I (Isa.Li (5, trips));
      Isa.L "loop";
      Isa.I (Isa.Addi (4, 4, 1));
      Isa.I (Isa.Sw (4, 0, 6));
      Isa.I (Isa.Lw (7, 0, 6));
      Isa.I (Isa.Bne (4, 5, "loop"));
      Isa.I Isa.Halt;
    ]

(* Build a rig around [loop_prog] and hand the machine to [setup]
   before running, so each corner can arm its own perturbation. *)
let run_loop ~engine ?(fuel = 100_000) ~trips setup =
  let machine = Machine.create () in
  let obs = Obs.create () in
  Machine.set_trace machine (Some obs);
  let interp = Interp.create ~engine machine in
  let prog = loop_prog trips in
  Interp.map_segment interp ~base:code_base prog;
  let sram = Machine.sram_base machine in
  Interp.set_reg interp 6
    @@ Cap.make_root ~base:sram ~top:(sram + 1024) ~perms:Perm.Set.read_write;
  let extra = setup machine in
  let pcc =
    Cap.make_root ~base:code_base
      ~top:(code_base + Isa.code_bytes prog)
      ~perms:Perm.Set.executable
  in
  let entry = Cap.exn (Cap.seal_entry pcc Cap.Otype.Call_inherit) in
  let outcome = Interp.run ~fuel interp entry in
  (view machine obs interp outcome, extra ())

let check_loop_matrix name ?fuel ~trips setup =
  let oracle, oracle_extra = run_loop ~engine:`Legacy ?fuel ~trips setup in
  List.iter
    (fun engine ->
      let got, extra = run_loop ~engine ?fuel ~trips setup in
      diff_views (name ^ ": " ^ engine_name engine) oracle got;
      Alcotest.(check (list (pair int int)))
        (name ^ " side observations: " ^ engine_name engine)
        oracle_extra extra)
    fast_engines;
  oracle

let test_irq_mid_block () =
  (* A timer deadline landing mid-trip: the event horizon must stop the
     deferred batch (and the self-loop spin) short of the deadline so
     delivery happens at exactly the cycle the per-instruction oracle
     delivers at. *)
  let oracle =
    check_loop_matrix "irq mid-block" ~trips:200 (fun machine ->
        let delivered = ref [] in
        Machine.set_irq_enabled machine true;
        Machine.set_deliver_hook machine
          (Some
             (fun n -> delivered := (n, Machine.cycles machine) :: !delivered));
        (* 8 cycles per trip: cycle 501 is mid-trip, mid-block. *)
        Machine.set_timer machine (Some 501);
        fun () -> List.rev !delivered)
  in
  Alcotest.(check string) "loop still halts" "halted" oracle.s_outcome

let test_fault_mid_block () =
  (* External hardware revokes r6's base granule at an exact cycle: the
     wakeup shortens the horizon, the block runs non-deferred through
     the listener, the epoch bump invalidates the warm inline caches,
     and the very next Lw/Sw through r6 must take the slow path and
     trap at the same instruction in every engine. *)
  let oracle =
    check_loop_matrix "fault mid-block" ~trips:200 (fun machine ->
        let mem = Machine.mem machine in
        let sram = Machine.sram_base machine in
        let h = Machine.add_tick_listener ~period:0 machine (fun _ ->
            Memory.set_revoked mem ~addr:sram ~len:8) in
        Machine.set_listener_wakeup machine h ~at:501;
        fun () -> [])
  in
  Alcotest.(check bool) "revocation mid-loop trapped" true
    (oracle.s_outcome <> "halted");
  Alcotest.(check bool) "trapped before the loop finished" true
    (oracle.s_instret < (200 * 4) + 3)

let test_fuel_inside_block () =
  (* Fuel that runs out inside the compiled block: the dispatcher's
     budget precondition fails and the remainder runs on the exact
     per-instruction engine, trapping "out of fuel" at the same pc and
     cycle.  Sweep fuel across several block phases. *)
  for fuel = 1 to 40 do
    ignore
      (check_loop_matrix
         (Printf.sprintf "fuel %d inside block" fuel)
         ~fuel ~trips:200
         (fun _ -> fun () -> []))
  done

let test_epoch_invalidation_between_runs () =
  (* Two executions of the same warm compiled block with a revocation
     edit in between: the first run warms the block cache and the
     memoized load-filter caches; the edit bumps the filter epoch; the
     second run must re-check and trap, and after clearing the bit a
     third run must succeed again — identically in every engine. *)
  let run engine =
    let machine = Machine.create () in
    let obs = Obs.create () in
    Machine.set_trace machine (Some obs);
    let interp = Interp.create ~engine machine in
    let prog = loop_prog 50 in
    Interp.map_segment interp ~base:code_base prog;
    let sram = Machine.sram_base machine in
    let mem = Machine.mem machine in
    Interp.set_reg interp 6
      @@ Cap.make_root ~base:sram ~top:(sram + 1024) ~perms:Perm.Set.read_write;
    let pcc =
      Cap.make_root ~base:code_base
        ~top:(code_base + Isa.code_bytes prog)
        ~perms:Perm.Set.executable
    in
    let entry = Cap.exn (Cap.seal_entry pcc Cap.Otype.Call_inherit) in
    let go () =
      view machine obs interp (Interp.run ~fuel:10_000 interp entry)
    in
    let warm = go () in
    Memory.set_revoked mem ~addr:sram ~len:8;
    let revoked = go () in
    Memory.clear_revoked mem ~addr:sram ~len:8;
    let cleared = go () in
    (warm, revoked, cleared)
  in
  let w0, r0, c0 = run `Legacy in
  Alcotest.(check string) "warm run halts" "halted" w0.s_outcome;
  Alcotest.(check bool) "revoked run traps" true (r0.s_outcome <> "halted");
  Alcotest.(check string) "cleared run halts again" "halted" c0.s_outcome;
  List.iter
    (fun engine ->
      let w, r, c = run engine in
      let n = engine_name engine in
      diff_views ("epoch warm: " ^ n) w0 w;
      diff_views ("epoch revoked: " ^ n) r0 r;
      diff_views ("epoch cleared: " ^ n) c0 c)
    fast_engines

let () =
  Alcotest.run "cheriot_interp_equiv"
    [
      ( "equiv",
        [
          Qcheck_seed.to_alcotest prop_random_programs;
          Qcheck_seed.to_alcotest prop_fuel_exhaustion;
          Alcotest.test_case "bounds fall-through" `Quick
            test_bounds_fall_through;
          Alcotest.test_case "narrow pcc" `Quick test_narrow_pcc;
          Alcotest.test_case "jump out exits" `Quick test_jump_out_exits;
        ] );
      ( "superblock corners",
        [
          Alcotest.test_case "IRQ mid-block" `Quick test_irq_mid_block;
          Alcotest.test_case "fault injected mid-block" `Quick
            test_fault_mid_block;
          Alcotest.test_case "fuel exhausted inside a block" `Quick
            test_fuel_inside_block;
          Alcotest.test_case "epoch invalidation between runs" `Quick
            test_epoch_invalidation_between_runs;
        ] );
    ]
