(* The flight recorder (lib/obs/forensics): streaming histogram
   properties, crash-dump capture on a real injected fault, the
   Microreboot subscriber list, JSON escaping round-trips and the
   CHERIOT_TRACE_CAP validation — the PR 4 observability surface. *)

module F = Firmware
module Cap = Capability

(* -------------------------------------------------------------------- *)
(* Streaming log2 histograms: exact count/sum/min/max, and quantile
   estimates within the bucket bound (v <= est < 2v) of the true
   sorted-sample quantile.                                              *)

let gen_samples = QCheck.Gen.(list_size (int_range 1 200) (int_range 0 1_000_000))

let exact_quantile sorted q =
  let n = List.length sorted in
  let rank = max 1 (min n (int_of_float (ceil (q *. float_of_int n)))) in
  List.nth sorted (rank - 1)

let prop_hist_exact_counters =
  QCheck.Test.make ~name:"histogram count/sum/min/max are exact" ~count:200
    (QCheck.make
       ~print:(fun l -> String.concat "," (List.map string_of_int l))
       gen_samples)
    (fun samples ->
      let h = Forensics.hist_create () in
      List.iter (Forensics.hist_add h) samples;
      Forensics.hist_count h = List.length samples
      && Forensics.hist_sum h = List.fold_left ( + ) 0 samples
      && Forensics.hist_min h = List.fold_left min max_int samples
      && Forensics.hist_max h = List.fold_left max min_int samples)

let prop_hist_quantile_bounds =
  QCheck.Test.make
    ~name:"histogram quantiles bound the exact quantile within a bucket"
    ~count:200
    (QCheck.make
       ~print:(fun l -> String.concat "," (List.map string_of_int l))
       gen_samples)
    (fun samples ->
      let h = Forensics.hist_create () in
      List.iter (Forensics.hist_add h) samples;
      let sorted = List.sort compare samples in
      List.for_all
        (fun q ->
          let est = Forensics.hist_quantile h q in
          let v = exact_quantile sorted q in
          if v = 0 then est = 0 else est >= v && est <= 2 * v)
        [ 0.0; 0.25; 0.5; 0.9; 0.99; 1.0 ])

let prop_hist_quantile_monotone =
  QCheck.Test.make ~name:"histogram quantile is monotone in q" ~count:200
    (QCheck.make
       ~print:(fun l -> String.concat "," (List.map string_of_int l))
       gen_samples)
    (fun samples ->
      let h = Forensics.hist_create () in
      List.iter (Forensics.hist_add h) samples;
      let qs = [ 0.0; 0.1; 0.25; 0.5; 0.75; 0.9; 0.99; 1.0 ] in
      let ests = List.map (Forensics.hist_quantile h) qs in
      let rec mono = function
        | a :: (b :: _ as rest) -> a <= b && mono rest
        | _ -> true
      in
      mono ests)

let test_hist_empty () =
  let h = Forensics.hist_create () in
  Alcotest.(check int) "count" 0 (Forensics.hist_count h);
  Alcotest.(check int) "p50 of empty" 0 (Forensics.hist_quantile h 0.5)

(* -------------------------------------------------------------------- *)
(* Merge algebra (the fleet-rollup building block): merging equals
   ingesting the concatenated streams, and merge is associative and
   commutative with the empty histogram as identity.                    *)

let hist_of samples =
  let h = Forensics.hist_create () in
  List.iter (Forensics.hist_add h) samples;
  h

(* Full observable equality: counters, both quantile probes and the
   bucket list. *)
let hist_eq a b =
  Forensics.hist_count a = Forensics.hist_count b
  && Forensics.hist_sum a = Forensics.hist_sum b
  && Forensics.hist_min a = Forensics.hist_min b
  && Forensics.hist_max a = Forensics.hist_max b
  && Forensics.hist_buckets a = Forensics.hist_buckets b
  && List.for_all
       (fun q -> Forensics.hist_quantile a q = Forensics.hist_quantile b q)
       [ 0.0; 0.5; 0.99; 1.0 ]

let gen_two = QCheck.Gen.(pair gen_samples gen_samples)
let gen_three = QCheck.Gen.(triple gen_samples gen_samples gen_samples)
let pr l = String.concat "," (List.map string_of_int l)

let prop_merge_is_concat_ingest =
  QCheck.Test.make
    ~name:"hist merge equals ingesting the concatenated streams" ~count:200
    (QCheck.make ~print:(fun (a, b) -> pr a ^ " | " ^ pr b) gen_two)
    (fun (xs, ys) ->
      hist_eq
        (Forensics.hist_merge (hist_of xs) (hist_of ys))
        (hist_of (xs @ ys)))

let prop_merge_commutative =
  QCheck.Test.make ~name:"hist merge is commutative" ~count:200
    (QCheck.make ~print:(fun (a, b) -> pr a ^ " | " ^ pr b) gen_two)
    (fun (xs, ys) ->
      let a = hist_of xs and b = hist_of ys in
      hist_eq (Forensics.hist_merge a b) (Forensics.hist_merge b a))

let prop_merge_associative =
  QCheck.Test.make ~name:"hist merge is associative" ~count:200
    (QCheck.make
       ~print:(fun (a, b, c) -> pr a ^ " | " ^ pr b ^ " | " ^ pr c)
       gen_three)
    (fun (xs, ys, zs) ->
      let a = hist_of xs and b = hist_of ys and c = hist_of zs in
      hist_eq
        (Forensics.hist_merge (Forensics.hist_merge a b) c)
        (Forensics.hist_merge a (Forensics.hist_merge b c)))

let prop_merge_identity =
  QCheck.Test.make
    ~name:"empty histogram is the merge identity; inputs not mutated"
    ~count:200
    (QCheck.make ~print:pr gen_samples)
    (fun xs ->
      let a = hist_of xs in
      let before = Forensics.hist_buckets a in
      let merged = Forensics.hist_merge a (Forensics.hist_create ()) in
      hist_eq merged a
      && hist_eq (Forensics.hist_merge (Forensics.hist_create ()) a) a
      && hist_eq (Forensics.hist_copy a) a
      && Forensics.hist_buckets a = before)

(* -------------------------------------------------------------------- *)
(* Ingest mechanics on a hand-fed event stream: call latency, IRQ
   entry-to-dispatch, allocation lifecycle and owner attribution.       *)

let ingest t cycle kind = Forensics.ingest t ~cycle kind

let test_ingest_call_latency () =
  let t = Forensics.create () in
  ingest t 0 (Obs.Thread_dispatch { tid = 0; name = "main" });
  ingest t 100 (Obs.Call_enter { caller = "a"; callee = "b"; entry = "e"; tid = 0 });
  ingest t 350 (Obs.Call_leave { callee = "b"; tid = 0; faulted = false });
  let h = Forensics.call_latency t in
  Alcotest.(check int) "one call" 1 (Forensics.hist_count h);
  Alcotest.(check int) "latency min" 250 (Forensics.hist_min h);
  Alcotest.(check int) "latency max" 250 (Forensics.hist_max h);
  let r = Forensics.report_json t ~total_cycles:400 ~events:[] in
  let b = Json.(member "b" (member "compartments" r)) in
  Alcotest.(check (option int)) "b.calls" (Some 1)
    Json.(to_int_opt (member "calls" b));
  Alcotest.(check (option int)) "b.call_cycles_total" (Some 250)
    Json.(to_int_opt (member "call_cycles_total" b))

let test_ingest_irq_latency () =
  let t = Forensics.create () in
  ingest t 100 (Obs.Irq_enter { irq = 3 });
  ingest t 130 (Obs.Thread_dispatch { tid = 1; name = "handler" });
  (* a second dispatch without a pending IRQ adds nothing *)
  ingest t 200 (Obs.Thread_dispatch { tid = 0; name = "main" });
  let h = Forensics.irq_latency t in
  Alcotest.(check int) "one irq" 1 (Forensics.hist_count h);
  Alcotest.(check int) "entry-to-dispatch" 30 (Forensics.hist_min h)

let test_ingest_quarantine_residency () =
  let t = Forensics.create () in
  ingest t 0 (Obs.Thread_dispatch { tid = 0; name = "main" });
  ingest t 5 (Obs.Call_enter { caller = "a"; callee = "b"; entry = "e"; tid = 0 });
  ingest t 10 (Obs.Alloc { base = 0x1000; size = 64 });
  ingest t 50 (Obs.Free { base = 0x1000; size = 64 });
  ingest t 50 (Obs.Quarantine { base = 0x1000; size = 64 });
  ingest t 550 (Obs.Release { base = 0x1000; size = 64 });
  Alcotest.(check int) "alloc size recorded" 64
    (Forensics.hist_min (Forensics.alloc_size t));
  let h = Forensics.quarantine_residency t in
  Alcotest.(check int) "one residency sample" 1 (Forensics.hist_count h);
  Alcotest.(check int) "residency cycles" 500 (Forensics.hist_min h);
  (* the chunk is attributed to the compartment that allocated it *)
  let r = Forensics.report_json t ~total_cycles:600 ~events:[] in
  let b = Json.(member "b" (member "compartments" r)) in
  Alcotest.(check (option int)) "owner residency p99" (Some 500)
    Json.(to_int_opt (member "quarantine_p99_cycles" b));
  Alcotest.(check (option int)) "heap high water" (Some 64)
    Json.(to_int_opt (member "heap_high_water" b));
  Alcotest.(check (option int)) "heap live back to zero" (Some 0)
    Json.(to_int_opt (member "heap_live_bytes" b))

(* -------------------------------------------------------------------- *)
(* A real injected fault on a real kernel: the dump carries the right
   compartment, cause, 16 registers, the caller chain and the reboot
   mark; Microreboot's subscriber list delivers to every subscriber.    *)

let firmware () =
  System.image ~name:"forensics"
    ~threads:
      [
        F.thread ~name:"driver" ~comp:"app" ~entry:"main" ~stack_size:4096
          ~trusted_stack_frames:16 ();
      ]
    [
      F.compartment "app" ~globals_size:16
        ~entries:[ F.entry "main" ~arity:0 ~min_stack:1024 ]
        ~imports:
          (System.standard_imports @ [ F.Call { comp = "svc"; entry = "work" } ]);
      F.compartment "svc" ~globals_size:16 ~error_handler:true
        ~entries:[ F.entry "work" ~arity:0 ~min_stack:512 ]
        ~imports:System.standard_imports;
    ]

(* Boot, crash the service once at the call boundary, micro-reboot it,
   and return the machine's flight recorder. *)
let run_crash ?(setup = fun (_ : Kernel.t) -> ()) () =
  let machine = Machine.create () in
  Machine.set_trace machine (Some (Obs.create ()));
  let frn = Forensics.create () in
  Machine.set_forensics machine (Some frn);
  let sys = Result.get_ok (System.boot ~machine (firmware ())) in
  let k = sys.System.kernel in
  setup k;
  Kernel.snapshot_globals k ~comp:"svc";
  Kernel.implement1 k ~comp:"svc" ~entry:"work" (fun _ _ ->
      Interp.int_value 1);
  Kernel.set_error_handler k ~comp:"svc" (fun cctx _fi ->
      Microreboot.perform cctx ~comp:"svc"
        {
          Microreboot.wake_blocked = (fun () -> ());
          release_heap = (fun () -> ());
          reset_state = (fun () -> ());
        };
      `Unwind);
  let crash_next = ref true in
  Kernel.set_call_fault_hook k
    (Some
       (fun ~comp ~entry:_ ->
         if comp = "svc" && !crash_next then begin
           crash_next := false;
           true
         end
         else false));
  Kernel.implement1 k ~comp:"app" ~entry:"main" (fun ctx _ ->
      (match Kernel.call1 ctx ~import:"svc.work" [] with
      | Error Kernel.Fault_in_callee -> ()
      | Ok _ -> Alcotest.fail "injected crash did not surface"
      | Error e -> Alcotest.failf "unexpected error: %a" Kernel.pp_call_error e);
      Cap.null);
  System.run ~until_cycles:500_000_000 sys;
  frn

let test_crash_dump_fields () =
  let frn = run_crash () in
  match Forensics.dumps frn with
  | [ d ] ->
      Alcotest.(check string) "compartment" "svc" d.Forensics.d_comp;
      Alcotest.(check string) "cause" "injected crash" d.Forensics.d_cause;
      Alcotest.(check int) "full register file" 16
        (List.length d.Forensics.d_regs);
      Alcotest.(check bool) "handler ran" true d.Forensics.d_handler_ran;
      Alcotest.(check bool) "micro-rebooted" true d.Forensics.d_rebooted;
      (match d.Forensics.d_chain with
      | (caller, callee, entry, _) :: _ ->
          Alcotest.(check string) "innermost caller" "app" caller;
          Alcotest.(check string) "innermost callee" "svc" callee;
          Alcotest.(check string) "innermost entry" "work" entry
      | [] -> Alcotest.fail "empty call chain");
      Alcotest.(check bool) "recent events captured" true
        (d.Forensics.d_recent <> []);
      (* the dump serializes to JSON that parses back identically *)
      let j = Forensics.dump_json d in
      let rt = Result.get_ok (Json.of_string (Json.to_string j)) in
      Alcotest.(check bool) "dump JSON round-trips" true (Json.equal j rt)
  | ds -> Alcotest.failf "expected exactly one dump, got %d" (List.length ds)

let test_microreboot_subscribers () =
  let fired_a = ref 0 and fired_b = ref 0 and seen = ref [] in
  (* Two subscribers on one kernel: registration is additive, both fire
     in order. *)
  ignore
    (run_crash
       ~setup:(fun k ->
         ignore
           (Microreboot.subscribe k (fun ~comp ~cycle:_ ->
                incr fired_a;
                seen := comp :: !seen));
         ignore
           (Microreboot.subscribe k (fun ~comp:_ ~cycle:_ -> incr fired_b)))
       ());
  Alcotest.(check int) "first subscriber fired" 1 !fired_a;
  Alcotest.(check int) "second subscriber fired too" 1 !fired_b;
  Alcotest.(check (list string)) "right compartment" [ "svc" ] !seen;
  (* Unsubscribing one must not detach the other — and subscriptions are
     per-kernel, so a's counter cannot move on this second kernel. *)
  ignore
    (run_crash
       ~setup:(fun k ->
         let sa =
           Microreboot.subscribe k (fun ~comp:_ ~cycle:_ -> incr fired_a)
         in
         ignore
           (Microreboot.subscribe k (fun ~comp:_ ~cycle:_ -> incr fired_b));
         Microreboot.unsubscribe k sa)
       ());
  Alcotest.(check int) "unsubscribed stays quiet" 1 !fired_a;
  Alcotest.(check int) "survivor still fires" 2 !fired_b

(* -------------------------------------------------------------------- *)
(* JSON escaping: hostile strings survive the Chrome exporter and the
   crash-dump serializer.                                               *)

let hostile = "qu\"ote back\\slash tab\t nl\n bell\x07 nul\x00 end"

let test_json_escaping_chrome () =
  let evs =
    [
      { Obs.cycle = 0; kind = Obs.Thread_dispatch { tid = 0; name = hostile } };
      {
        Obs.cycle = 10;
        kind =
          Obs.Call_enter
            { caller = hostile; callee = "c\\d"; entry = "e\nf"; tid = 0 };
      };
      { Obs.cycle = 20; kind = Obs.Call_leave { callee = "c\\d"; tid = 0; faulted = false } };
      { Obs.cycle = 30; kind = Obs.Fault_note { note = hostile } };
    ]
  in
  let j = Obs.to_chrome evs in
  match Json.of_string (Json.to_string j) with
  | Ok rt -> Alcotest.(check bool) "chrome JSON round-trips" true (Json.equal j rt)
  | Error e -> Alcotest.failf "chrome JSON failed to parse back: %s" e

let test_json_escaping_dump () =
  let t = Forensics.create () in
  Forensics.record_fault t ~cycle:42 ~comp:hostile ~thread:0 ~cause:hostile
    ~addr:(-1) ~pc:0 ~instr:hostile
    ~regs:[ (hostile, hostile) ]
    ~handler_ran:false;
  match Forensics.dumps t with
  | [ d ] -> (
      let j = Forensics.dump_json d in
      match Json.of_string (Json.to_string j) with
      | Ok rt ->
          Alcotest.(check bool) "dump JSON round-trips" true (Json.equal j rt);
          Alcotest.(check (option string)) "cause intact" (Some hostile)
            Json.(to_string_opt (member "cause" rt))
      | Error e -> Alcotest.failf "dump JSON failed to parse back: %s" e)
  | _ -> Alcotest.fail "expected one dump"

(* -------------------------------------------------------------------- *)
(* CHERIOT_TRACE_CAP validation.                                        *)

let with_cap v f =
  Unix.putenv "CHERIOT_TRACE_CAP" v;
  Fun.protect ~finally:(fun () -> Unix.putenv "CHERIOT_TRACE_CAP" "") f

let test_trace_cap_env () =
  with_cap "" (fun () ->
      Alcotest.(check (option int)) "unset" None (Obs.ring_cap_env ()));
  with_cap "4096" (fun () ->
      Alcotest.(check (option int)) "valid" (Some 4096) (Obs.ring_cap_env ()));
  with_cap "4" (fun () ->
      match Obs.ring_cap_env () with
      | exception Failure msg ->
          Alcotest.(check bool) "names the bounds" true
            (Astring.String.is_infix ~affix:"out of range" msg)
      | _ -> Alcotest.fail "out-of-range capacity accepted");
  with_cap "banana" (fun () ->
      match Obs.ring_cap_env () with
      | exception Failure msg ->
          Alcotest.(check bool) "names the expectation" true
            (Astring.String.is_infix ~affix:"not an integer" msg)
      | _ -> Alcotest.fail "garbage capacity accepted");
  with_cap "4096" (fun () ->
      Unix.putenv "CHERIOT_TRACE" "1";
      Fun.protect
        ~finally:(fun () -> Unix.putenv "CHERIOT_TRACE" "")
        (fun () ->
          match Obs.auto () with
          | Some o -> Alcotest.(check int) "auto honours cap" 4096 (Obs.capacity o)
          | None -> Alcotest.fail "auto returned no sink"))

(* -------------------------------------------------------------------- *)
(* The report sum-check on a real run: attribution is exact and the
   table renders it.                                                    *)

let test_report_sum_check () =
  let machine = Machine.create () in
  let obs = Obs.create () in
  Machine.set_trace machine (Some obs);
  let frn = Forensics.create () in
  Machine.set_forensics machine (Some frn);
  let sys = Result.get_ok (System.boot ~machine (firmware ())) in
  Kernel.implement1 sys.System.kernel ~comp:"svc" ~entry:"work" (fun _ _ ->
      Interp.int_value 1);
  Kernel.implement1 sys.System.kernel ~comp:"app" ~entry:"main" (fun ctx _ ->
      for _ = 1 to 5 do
        ignore (Kernel.call1 ctx ~import:"svc.work" [])
      done;
      Cap.null);
  System.run ~until_cycles:500_000_000 sys;
  let total_cycles = Machine.cycles machine in
  let events = Obs.events obs in
  let r = Forensics.report_json frn ~total_cycles ~events in
  Alcotest.(check (option bool)) "sum check exact" (Some true)
    (match Json.(member "exact" (member "sum_check" r)) with
    | Json.Bool b -> Some b
    | _ -> None);
  Alcotest.(check (option int)) "attributed equals total" (Some total_cycles)
    Json.(to_int_opt (member "attributed_cycles" (member "sum_check" r)));
  let table = Forensics.report_table frn ~total_cycles ~events in
  Alcotest.(check bool) "table marks the sum exact" true
    (Astring.String.is_infix ~affix:", exact" table);
  Alcotest.(check (option int)) "five calls counted" (Some 5)
    Json.(to_int_opt (member "calls" (member "svc" (member "compartments" r))))

let suite =
  [
    Qcheck_seed.to_alcotest prop_hist_exact_counters;
    Qcheck_seed.to_alcotest prop_hist_quantile_bounds;
    Qcheck_seed.to_alcotest prop_hist_quantile_monotone;
    Qcheck_seed.to_alcotest prop_merge_is_concat_ingest;
    Qcheck_seed.to_alcotest prop_merge_commutative;
    Qcheck_seed.to_alcotest prop_merge_associative;
    Qcheck_seed.to_alcotest prop_merge_identity;
    Alcotest.test_case "empty histogram" `Quick test_hist_empty;
    Alcotest.test_case "ingest: call latency" `Quick test_ingest_call_latency;
    Alcotest.test_case "ingest: irq-to-dispatch" `Quick test_ingest_irq_latency;
    Alcotest.test_case "ingest: quarantine residency" `Quick
      test_ingest_quarantine_residency;
    Alcotest.test_case "crash dump fields" `Quick test_crash_dump_fields;
    Alcotest.test_case "microreboot subscriber list" `Quick
      test_microreboot_subscribers;
    Alcotest.test_case "JSON escaping: chrome exporter" `Quick
      test_json_escaping_chrome;
    Alcotest.test_case "JSON escaping: crash dump" `Quick
      test_json_escaping_dump;
    Alcotest.test_case "CHERIOT_TRACE_CAP validation" `Quick
      test_trace_cap_env;
    Alcotest.test_case "report sum-check" `Quick test_report_sum_check;
  ]

let () = Alcotest.run "cheriot_forensics" [ ("forensics", suite) ]
