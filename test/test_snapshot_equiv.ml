(* Equivalence lockdown for Machine.snapshot/restore: forking a run
   from a snapshot must be indistinguishable from never having forked.
   On randomized programs (the test_interp_equiv generator), three runs
   must agree on everything observable — outcome (including trap cause
   and faulting PC), instructions retired, simulated cycles, the full
   register file and the emitted trace event stream:

     f0: prologue; epilogue                    (uninterrupted)
     f1: prologue; snapshot; epilogue          (snapshot is invisible)
     f2: prologue; snapshot; epilogue;
         restore; epilogue                     (restore is exact)

   and identically under all three interpreter engines (legacy,
   pre-decoded, superblock — each restores through the same capture).
   Corners the generator cannot reach — snapshot with an IRQ latched
   behind a masked line, snapshot mid-quarantine-sweep, snapshot
   attempted from a running kernel thread, restore over a superblock
   engine's warm compiled blocks and inline caches — get hand-built
   cases. *)

module Cap = Capability
module F = Firmware

let code_base = 0x4000_0000
let code_base2 = 0x4100_0000

(* ------------------------------------------------------------------ *)
(* Random program generation (the test_interp_equiv generator)        *)
(* ------------------------------------------------------------------ *)

let n_labels = 4

let gen_instr rng labels =
  let reg () = 1 + Random.State.int rng 5 in
  let label () = List.nth labels (Random.State.int rng (List.length labels)) in
  let small () = Random.State.int rng 64 - 8 in
  match Random.State.int rng 100 with
  | n when n < 10 -> Isa.Li (reg (), Random.State.int rng 1000)
  | n when n < 18 -> Isa.Addi (reg (), reg (), small ())
  | n when n < 24 -> Isa.Add (reg (), reg (), reg ())
  | n when n < 28 -> Isa.Sub (reg (), reg (), reg ())
  | n when n < 32 -> Isa.Andi (reg (), reg (), Random.State.int rng 255)
  | n when n < 36 -> Isa.Mv (reg (), reg ())
  | n when n < 44 -> Isa.Beq (reg (), reg (), label ())
  | n when n < 50 -> Isa.Bne (reg (), reg (), label ())
  | n when n < 54 -> Isa.Bltu (reg (), reg (), label ())
  | n when n < 58 -> Isa.Bgeu (reg (), reg (), label ())
  | n when n < 62 -> Isa.J (label ())
  | n when n < 68 ->
      let auth = if Random.State.int rng 4 = 0 then 7 else 6 in
      Isa.Lw (reg (), 4 * Random.State.int rng 40, auth)
  | n when n < 74 ->
      let auth = if Random.State.int rng 4 = 0 then 7 else 6 in
      Isa.Sw (reg (), 4 * Random.State.int rng 40, auth)
  | n when n < 78 -> Isa.Cincaddrimm (reg (), 6, small ())
  | n when n < 81 -> Isa.Csetboundsimm (reg (), 6, Random.State.int rng 128)
  | n when n < 84 -> Isa.Cgetaddr (reg (), 6)
  | n when n < 86 -> Isa.Cgetlen (reg (), 7)
  | n when n < 88 -> Isa.Cgettag (reg (), reg ())
  | n when n < 90 -> Isa.Cgetperm (reg (), 6)
  | n when n < 92 -> Isa.Ccleartag (reg (), reg ())
  | n when n < 94 -> Isa.Cjal (reg (), label ())
  | n when n < 96 -> Isa.Auipcc (reg (), label ())
  | n when n < 97 -> Isa.Cjalr (reg (), 8)
  | n when n < 98 -> Isa.Trapif "generated"
  | _ -> Isa.Halt

let gen_program rng =
  let len = 8 + Random.State.int rng 32 in
  let labels = List.init n_labels (fun i -> Printf.sprintf "L%d" i) in
  let label_at = Array.make len [] in
  List.iter
    (fun l ->
      let i = Random.State.int rng len in
      label_at.(i) <- l :: label_at.(i))
    labels;
  let items = ref [] in
  for i = len - 1 downto 0 do
    items := Isa.I (gen_instr rng labels) :: !items;
    List.iter (fun l -> items := Isa.L l :: !items) label_at.(i)
  done;
  Isa.assemble ~name:"equiv" (!items @ [ Isa.I Isa.Halt ])

(* ------------------------------------------------------------------ *)
(* Harness: prologue program A, epilogue program B, fork between them *)
(* ------------------------------------------------------------------ *)

type rig = {
  machine : Machine.t;
  obs : Obs.t;
  frn : Forensics.t;
  prof : Profiler.t;
  interp : Interp.t;
}

let outcome_to_string = function
  | Interp.Halted -> "halted"
  | Interp.Exited c -> "exited " ^ Cap.to_string c
  | Interp.Trapped tr -> Fmt.str "%a" Interp.pp_trap tr

let make_rig ~engine prog_a prog_b =
  let machine = Machine.create () in
  let obs = Obs.create () in
  Machine.set_trace machine (Some obs);
  (* The flight recorder and profiler ride the same emission stream and
     are captured by the same snapshot — attaching them here puts their
     state under every fork-equivalence property below. *)
  let frn = Forensics.create () in
  Machine.set_forensics machine (Some frn);
  let prof = Profiler.create ~mode:Profiler.Exact () in
  Machine.set_profiler machine (Some prof);
  let interp = Interp.create ~engine machine in
  Interp.map_segment interp ~base:code_base prog_a;
  Interp.map_segment interp ~base:code_base2 prog_b;
  let sram = Machine.sram_base machine in
  Interp.set_reg interp 6
    @@ Cap.make_root ~base:sram ~top:(sram + 1024) ~perms:Perm.Set.read_write;
  Interp.set_reg interp 7
    @@ Cap.make_root ~base:(sram + 64) ~top:(sram + 96) ~perms:Perm.Set.read_write;
  let pcc =
    Cap.make_root ~base:code_base
      ~top:(code_base + Isa.code_bytes prog_a)
      ~perms:Perm.Set.executable
  in
  Interp.set_reg interp 8 @@ Cap.exn (Cap.seal_entry pcc Cap.Otype.Call_inherit);
  { machine; obs; frn; prof; interp }

let entry_of base prog =
  let pcc =
    Cap.make_root ~base ~top:(base + Isa.code_bytes prog)
      ~perms:Perm.Set.executable
  in
  Cap.exn (Cap.seal_entry pcc Cap.Otype.Call_inherit)

type view = {
  s_outcome : string;
  s_instret : int;
  s_cycles : int;
  s_regs : string list;
  s_events : string list;
  s_folded : string;
  s_fleet : string;
}

let run_epilogue ~fuel rig prog_b =
  let outcome = Interp.run ~fuel rig.interp (entry_of code_base2 prog_b) in
  let cycles = Machine.cycles rig.machine in
  {
    s_outcome = outcome_to_string outcome;
    s_instret = Interp.instret rig.interp;
    s_cycles = cycles;
    s_regs = Array.to_list (Array.map Cap.to_string (Interp.read_regs rig.interp));
    s_events = List.map (Fmt.str "%a" Obs.pp_event) (Obs.events rig.obs);
    s_folded = Profiler.to_folded_text rig.prof ~total_cycles:cycles;
    s_fleet = Agg.table (Agg.of_forensics rig.frn ~cycles);
  }

let check_view what a b =
  let same l = String.concat "; " l in
  if a.s_outcome <> b.s_outcome then
    QCheck.Test.fail_reportf "%s outcome: %s vs %s" what a.s_outcome b.s_outcome;
  if a.s_instret <> b.s_instret then
    QCheck.Test.fail_reportf "%s instret: %d vs %d" what a.s_instret b.s_instret;
  if a.s_cycles <> b.s_cycles then
    QCheck.Test.fail_reportf "%s cycles: %d vs %d" what a.s_cycles b.s_cycles;
  if a.s_regs <> b.s_regs then
    QCheck.Test.fail_reportf "%s registers:@.%s@.vs@.%s" what (same a.s_regs)
      (same b.s_regs);
  if a.s_events <> b.s_events then
    QCheck.Test.fail_reportf "%s trace events:@.%s@.vs@.%s" what
      (same a.s_events) (same b.s_events);
  if a.s_folded <> b.s_folded then
    QCheck.Test.fail_reportf "%s folded stacks:@.%s@.vs@.%s" what a.s_folded
      b.s_folded;
  if a.s_fleet <> b.s_fleet then
    QCheck.Test.fail_reportf "%s fleet metrics:@.%s@.vs@.%s" what a.s_fleet
      b.s_fleet

(* One engine's triple for a given program pair. *)
let fork_views ~engine ~fuel prog_a prog_b =
  let plain = make_rig ~engine prog_a prog_b in
  ignore (Interp.run ~fuel plain.interp (entry_of code_base prog_a));
  let f0 = run_epilogue ~fuel plain prog_b in
  let rig = make_rig ~engine prog_a prog_b in
  ignore (Interp.run ~fuel rig.interp (entry_of code_base prog_a));
  let snap = Machine.snapshot rig.machine in
  let f1 = run_epilogue ~fuel rig prog_b in
  Machine.restore rig.machine snap;
  let f2 = run_epilogue ~fuel rig prog_b in
  (f0, f1, f2, rig, snap)

let check_matrix ?(fuel = 2_000) s =
  let rng = Random.State.make [| s; 0x54a9 |] in
  let prog_a = gen_program rng in
  let prog_b = gen_program rng in
  let f0, f1, f2, rig, snap =
    fork_views ~engine:`Superblock ~fuel prog_a prog_b
  in
  check_view "superblock: snapshot invisible" f0 f1;
  check_view "superblock: restore exact" f1 f2;
  (* Restoring the same snapshot again must fork identically — the
     capture owns its state, successive restores cannot see each other. *)
  Machine.restore rig.machine snap;
  let f3 = run_epilogue ~fuel rig prog_b in
  check_view "superblock: second restore exact" f2 f3;
  (* The other engines restore through the same capture and must land
     on the same fork. *)
  let g0, g1, g2, _, _ = fork_views ~engine:`Legacy ~fuel prog_a prog_b in
  check_view "legacy: snapshot invisible" g0 g1;
  check_view "legacy: restore exact" g1 g2;
  check_view "superblock == legacy after restore" f2 g2;
  let _, _, h2, _, _ = fork_views ~engine:`Predecode ~fuel prog_a prog_b in
  check_view "predecode == legacy after restore" h2 g2;
  true

let seed_gen = QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 0x3fffffff)

let prop_fork_matrix =
  QCheck.Test.make
    ~name:"snapshot fork == uninterrupted run (both engines)" ~count:100
    seed_gen check_matrix

let prop_fork_any_fuel =
  QCheck.Test.make ~name:"fork equivalence at every prologue fuel" ~count:60
    (QCheck.pair seed_gen QCheck.(int_range 1 60))
    (fun (s, fuel) ->
      (* A fuel-starved prologue leaves the machine mid-whatever it was
         doing (Software trap); the fork must still be exact there. *)
      let rng = Random.State.make [| s; 0x0f0e |] in
      let prog_a = gen_program rng in
      let prog_b = gen_program rng in
      let _, f1, f2, _, _ =
        fork_views ~engine:`Superblock ~fuel prog_a prog_b
      in
      (* Only restore-exactness is meaningful here: the prologue was cut
         short by fuel in both runs, so f0 ≡ f1 already follows from the
         full-fuel property. *)
      check_view "starved prologue: restore exact" f1 f2;
      true)

(* ------------------------------------------------------------------ *)
(* Corner: snapshot with an IRQ latched behind a masked line          *)
(* ------------------------------------------------------------------ *)

let test_pending_irq_snapshot () =
  let machine = Machine.create () in
  let delivered = ref [] in
  Machine.set_deliver_hook machine
    (Some (fun n -> delivered := (n, Machine.cycles machine) :: !delivered));
  Machine.set_irq_enabled machine false;
  Machine.raise_irq machine 5;
  Machine.tick machine 100;
  Alcotest.(check bool) "latched while masked" true (Machine.pending machine 5);
  let snap = Machine.snapshot machine in
  let unmask_and_run () =
    Machine.set_irq_enabled machine true;
    Machine.tick machine 50;
    let got = List.rev !delivered in
    delivered := [];
    (got, Machine.cycles machine, Machine.pending machine 5)
  in
  let a = unmask_and_run () in
  Machine.restore machine snap;
  Alcotest.(check bool) "pending bit restored" true (Machine.pending machine 5);
  let b = unmask_and_run () in
  let pp = Alcotest.(triple (list (pair int int)) int bool) in
  Alcotest.check pp "post-restore delivery identical" a b;
  let deliveries, _, still_pending = a in
  Alcotest.(check bool) "irq actually delivered" true (deliveries <> []);
  Alcotest.(check bool) "pending cleared by delivery" false still_pending

(* ------------------------------------------------------------------ *)
(* Corner: restore over a superblock engine's warm caches             *)
(* ------------------------------------------------------------------ *)

let test_restore_over_warm_superblock_caches () =
  (* The superblock engine memoizes load-filter checks keyed on
     (authority, filter epoch).  Snapshot a machine whose data region is
     revoked, clear the revocation and run a loop to warm the compiled
     blocks and their inline caches with passing entries, then restore.
     The restored machine is revoked again; if restore failed to bump
     the filter epoch (or the interpreter kept stale per-run state), the
     warm caches would let the loop run unchecked.  It must trap exactly
     like a fresh legacy interpreter on the restored state. *)
  let prog =
    Isa.assemble ~name:"warm"
      [
        Isa.I (Isa.Li (4, 0));
        Isa.I (Isa.Li (5, 50));
        Isa.L "loop";
        Isa.I (Isa.Addi (4, 4, 1));
        Isa.I (Isa.Sw (4, 0, 6));
        Isa.I (Isa.Lw (7, 0, 6));
        Isa.I (Isa.Bne (4, 5, "loop"));
        Isa.I Isa.Halt;
      ]
  in
  let run engine =
    let machine = Machine.create () in
    let interp = Interp.create ~engine machine in
    Interp.map_segment interp ~base:code_base prog;
    let sram = Machine.sram_base machine in
    let mem = Machine.mem machine in
    Interp.set_reg interp 6
      @@ Cap.make_root ~base:sram ~top:(sram + 1024) ~perms:Perm.Set.read_write;
    let go () =
      ( outcome_to_string (Interp.run ~fuel:10_000 interp (entry_of code_base prog)),
        Interp.instret interp,
        Machine.cycles machine )
    in
    Memory.set_revoked mem ~addr:sram ~len:8;
    let snap = Machine.snapshot machine in
    Memory.clear_revoked mem ~addr:sram ~len:8;
    let warm = go () in
    Machine.restore machine snap;
    let restored = go () in
    (warm, restored)
  in
  let (warm_l, restored_l) = run `Legacy in
  let (warm_s, restored_s) = run `Superblock in
  let t3 = Alcotest.(triple string int int) in
  let (o, _, _) = warm_l in
  Alcotest.(check string) "warm run halts" "halted" o;
  let (o, _, _) = restored_l in
  Alcotest.(check bool) "restored run traps" true (o <> "halted");
  Alcotest.check t3 "warm run agrees" warm_l warm_s;
  Alcotest.check t3 "restored run agrees over warm caches" restored_l
    restored_s

(* ------------------------------------------------------------------ *)
(* Corners needing a full system: mid-sweep fork, quiescence contract *)
(* ------------------------------------------------------------------ *)

let churn_firmware () =
  System.image ~name:"snapchurn"
    ~sealed_objects:[ Allocator.alloc_capability ~name:"q" ~quota:8192 ]
    ~threads:
      [ F.thread ~name:"main" ~comp:"churn" ~entry:"main" ~stack_size:2048 () ]
    [
      F.compartment "churn" ~globals_size:16
        ~entries:[ F.entry "main" ~arity:0 ~min_stack:512 ]
        ~imports:(System.standard_imports @ [ F.Static_sealed { target = "q" } ]);
    ]

let boot_churn body =
  let machine = Machine.create () in
  Machine.set_forensics machine (Some (Forensics.create ()));
  Machine.set_profiler machine (Some (Profiler.create ~mode:Profiler.Exact ()));
  let sys = Result.get_ok (System.boot ~machine (churn_firmware ())) in
  let k = sys.System.kernel in
  Kernel.implement1 k ~comp:"churn" ~entry:"main" (fun ctx _ ->
      let l = Loader.find_comp (Kernel.loader ctx.Kernel.kernel) "churn" in
      let q =
        Machine.load_cap machine ~auth:l.Loader.lc_import_cap
          ~addr:(Loader.import_slot_addr l (Loader.import_slot l "sealed:q"))
      in
      body machine ctx q;
      Cap.null);
  System.run ~until_cycles:2_000_000_000 sys;
  (machine, sys)

let test_mid_sweep_snapshot () =
  (* Free enough to fill the quarantine, then snapshot with the revoker
     partway through a sweep: the sweep cursor and cycle debt are state
     like any other, so completing the sweep after a restore must land
     on the same cycle count and quarantine level as the first time. *)
  let machine, sys =
    boot_churn (fun _machine ctx q ->
        for _ = 1 to 40 do
          match Allocator.allocate ctx ~alloc_cap:q 64 with
          | Ok c -> ignore (Allocator.free ctx ~alloc_cap:q c)
          | Error _ -> ()
        done)
  in
  Machine.revoker_kick machine;
  Machine.tick machine 64;
  let c_snap = Machine.cycles machine in
  let snap = Machine.snapshot machine in
  let finish () =
    Machine.run_revoker_to_completion machine;
    (Machine.cycles machine, Allocator.quarantined_bytes sys.System.alloc)
  in
  let c1, q1 = finish () in
  Alcotest.(check bool) "sweep was actually in progress" true (c1 > c_snap);
  Machine.restore machine snap;
  let c2, q2 = finish () in
  Alcotest.(check int) "completion cycles identical" c1 c2;
  Alcotest.(check int) "quarantine level identical" q1 q2

let test_obs_state_fork () =
  (* Observability state is machine state: restore mid-run (with the
     revoker partway through a sweep) and complete the run — the
     profiler's folded stacks and the flight recorder's histograms and
     counters must be identical to a run that was never interrupted.
     The comparison goes through [Agg.of_forensics], so a fleet rollup
     merged from restored machines equals one merged from pristine
     machines. *)
  let churn machine ctx q =
    ignore machine;
    for _ = 1 to 40 do
      match Allocator.allocate ctx ~alloc_cap:q 64 with
      | Ok c -> ignore (Allocator.free ctx ~alloc_cap:q c)
      | Error _ -> ()
    done
  in
  let finish machine =
    Machine.run_revoker_to_completion machine;
    let cycles = Machine.cycles machine in
    let prof = Option.get (Machine.profiler machine) in
    let frn = Option.get (Machine.forensics machine) in
    ( Profiler.to_folded_text prof ~total_cycles:cycles,
      Agg.table (Agg.of_forensics frn ~cycles) )
  in
  (* Uninterrupted run. *)
  let machine0, _ = boot_churn churn in
  Machine.revoker_kick machine0;
  Machine.tick machine0 64;
  let folded0, fleet0 = finish machine0 in
  (* Same run, but forked mid-sweep: snapshot, finish, restore, finish. *)
  let machine, _ = boot_churn churn in
  Machine.revoker_kick machine;
  Machine.tick machine 64;
  let snap = Machine.snapshot machine in
  let folded1, fleet1 = finish machine in
  Machine.restore machine snap;
  let folded2, fleet2 = finish machine in
  Alcotest.(check string) "folded stacks: snapshot invisible" folded0 folded1;
  Alcotest.(check string) "folded stacks: restore exact" folded0 folded2;
  Alcotest.(check string) "fleet metrics: snapshot invisible" fleet0 fleet1;
  Alcotest.(check string) "fleet metrics: restore exact" fleet0 fleet2;
  Alcotest.(check bool) "profile is non-trivial" true
    (String.length folded0 > 0 && String.contains folded0 ';')

let test_snapshot_rejected_mid_run () =
  (* The quiescence contract: a kernel thread suspended mid-effect (or
     running) cannot be deep-copied, so snapshotting from inside a
     compartment call must refuse loudly rather than capture a lie. *)
  let refused = ref false in
  let attempted = ref false in
  let _ =
    boot_churn (fun machine _ctx _q ->
        attempted := true;
        match Machine.snapshot machine with
        | _ -> ()
        | exception Invalid_argument _ -> refused := true)
  in
  Alcotest.(check bool) "body ran" true !attempted;
  Alcotest.(check bool) "snapshot refused inside a running thread" true !refused

let () =
  Alcotest.run "cheriot_snapshot_equiv"
    [
      ( "equiv",
        [
          Qcheck_seed.to_alcotest prop_fork_matrix;
          Qcheck_seed.to_alcotest prop_fork_any_fuel;
          Alcotest.test_case "pending IRQ behind masked line" `Quick
            test_pending_irq_snapshot;
          Alcotest.test_case "restore over warm superblock caches" `Quick
            test_restore_over_warm_superblock_caches;
          Alcotest.test_case "mid-quarantine-sweep fork" `Quick
            test_mid_sweep_snapshot;
          Alcotest.test_case "profiler and forensics fork mid-run" `Quick
            test_obs_state_fork;
          Alcotest.test_case "snapshot refused mid-run" `Quick
            test_snapshot_rejected_mid_run;
        ] );
    ]
