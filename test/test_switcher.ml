(* Assembly-level security invariants of the switcher (§3.1.2): what a
   callee receives in its registers, what the caller gets back, stack
   zeroing, and trusted-stack exhaustion. *)

module Cap = Capability
module F = Firmware

let iv = Interp.int_value
let ti = Interp.to_int

let firmware () =
  F.create ~name:"switcher-test"
    ~threads:
      [
        F.thread ~name:"main" ~comp:"caller" ~entry:"main" ~stack_size:2048
          ~trusted_stack_frames:4 ();
      ]
    [
      F.compartment "caller" ~globals_size:32
        ~entries:[ F.entry "main" ~arity:0 ~min_stack:256 ]
        ~imports:
          [
            F.Call { comp = "callee"; entry = "probe" };
            F.Call { comp = "callee"; entry = "scribble" };
            F.Call { comp = "recurse"; entry = "deep" };
          ];
      F.compartment "callee" ~globals_size:48
        ~entries:
          [
            F.entry "probe" ~arity:2 ~min_stack:256;
            F.entry "scribble" ~arity:0 ~min_stack:256;
          ];
      F.compartment "recurse" ~globals_size:16
        ~entries:[ F.entry "deep" ~arity:1 ~min_stack:64 ]
        ~imports:[ F.Call { comp = "recurse"; entry = "deep" } ];
    ]

let boot main =
  let machine = Machine.create () in
  let k = Result.get_ok (Kernel.boot ~machine (firmware ())) in
  let failure = ref None in
  Kernel.implement1 k ~comp:"caller" ~entry:"main" (fun ctx _ ->
      (try main k ctx with e -> failure := Some e);
      Cap.null);
  Kernel.implement1 k ~comp:"recurse" ~entry:"deep" (fun ctx args ->
      let n = ti args.(0) in
      if n <= 0 then iv 0
      else
        match Kernel.call1 ctx ~import:"recurse.deep" [ iv (n - 1) ] with
        | Ok v -> iv (ti v + 1)
        | Error Kernel.Trusted_stack_exhausted -> iv (-100)
        | Error _ -> iv (-1));
  (k, fun () -> (Kernel.run k; match !failure with Some e -> raise e | None -> ()))

let test_callee_register_state () =
  (* At entry, the callee must see: its args, its own cgp, a truncated
     stack with cursor at the top, a return sentry — and nothing else
     (no trusted stack, no switcher key, no caller state). *)
  let checked = ref false in
  let k, run = boot (fun k ctx ->
      Kernel.implement1 k ~comp:"callee" ~entry:"probe" (fun cctx args ->
          let regs = Interp.read_regs (Kernel.interp k) in
          (* Arguments delivered. *)
          Alcotest.(check int) "arg0" 11 (ti args.(0));
          Alcotest.(check int) "arg1" 22 (ti args.(1));
          (* Non-argument argument registers cleared. *)
          for i = 2 to 5 do
            Alcotest.(check bool)
              (Printf.sprintf "ca%d cleared" i)
              false
              (Cap.tag regs.(Isa.ca0 + i))
          done;
          (* Scratch/saved registers scrubbed: no switcher state leaks. *)
          List.iter
            (fun (name, r) ->
              Alcotest.(check bool) (name ^ " scrubbed") false (Cap.tag regs.(r)))
            [ ("ct0", Isa.ct0); ("ct1", Isa.ct1); ("ct3", Isa.ct3);
              ("cs0", Isa.cs0); ("cs1", Isa.cs1) ];
          (* The stack is truncated to the callee window. *)
          let callee_csp = cctx.Kernel.csp in
          let caller_csp = ctx.Kernel.csp in
          Alcotest.(check bool) "callee stack within caller's" true
            (Cap.base callee_csp >= Cap.base caller_csp
            && Cap.top callee_csp <= Cap.address caller_csp);
          Alcotest.(check int) "cursor at top" (Cap.top callee_csp)
            (Cap.address callee_csp);
          Alcotest.(check bool) "stack is non-global" false
            (Cap.has_perm Perm.Global callee_csp);
          (* The callee's globals belong to the callee. *)
          let l = Loader.find_comp (Kernel.loader k) "callee" in
          Alcotest.(check int) "cgp base" l.Loader.lc_globals_base
            (Cap.base cctx.Kernel.cgp);
          (* The return register holds an interrupt-disabling sentry into
             the switcher. *)
          (match Cap.otype regs.(Isa.ra) with
          | Cap.Otype.Sentry Cap.Otype.Call_disable -> ()
          | _ -> Alcotest.fail "ra is not a switcher return sentry");
          checked := true;
          iv 0);
      ignore (Kernel.call1 ctx ~import:"callee.probe" [ iv 11; iv 22 ]))
  in
  run ();
  ignore k;
  Alcotest.(check bool) "probe ran" true !checked

let test_caller_register_state_after_return () =
  (* After the return path, only ca0/ca1 may carry callee data. *)
  let k, run = boot (fun k ctx ->
      Kernel.implement k ~comp:"callee" ~entry:"probe" (fun _ _ -> (iv 7, iv 8));
      match Kernel.call ctx ~import:"callee.probe" [ iv 0; iv 0 ] with
      | Ok (r0, r1) ->
          Alcotest.(check int) "ret0" 7 (ti r0);
          Alcotest.(check int) "ret1" 8 (ti r1);
          let regs = Interp.read_regs (Kernel.interp ctx.Kernel.kernel) in
          List.iter
            (fun (name, r) ->
              Alcotest.(check bool) (name ^ " cleared on return") false
                (Cap.tag regs.(r)))
            [ ("ca2", Isa.ca2); ("ca3", Isa.ca3); ("ca4", Isa.ca4); ("ca5", Isa.ca5);
              ("ct0", Isa.ct0); ("ct1", Isa.ct1); ("ct3", Isa.ct3);
              ("cs0", Isa.cs0); ("cs1", Isa.cs1) ]
      | Error e -> Alcotest.failf "call failed: %a" Kernel.pp_call_error e)
  in
  run ();
  ignore k

let test_stack_window_zeroed_between_calls () =
  (* A callee writes secrets into its stack window; the next call into
     the same window must observe zeros (caller-leak and callee-leak
     prevention, §5.3.2). *)
  let second_run_values = ref [] in
  let pass = ref 0 in
  let k, run = boot (fun k ctx ->
      Kernel.implement1 k ~comp:"callee" ~entry:"scribble" (fun cctx _ ->
          let m = Kernel.machine k in
          let top = Cap.address cctx.Kernel.csp in
          incr pass;
          if !pass = 1 then
            (* Fill our window with a pattern. *)
            for i = 1 to 32 do
              Machine.store m ~auth:cctx.Kernel.csp ~addr:(top - (4 * i)) ~size:4
                0xdeadbeef
            done
          else
            for i = 1 to 32 do
              second_run_values :=
                Machine.load m ~auth:cctx.Kernel.csp ~addr:(top - (4 * i)) ~size:4
                :: !second_run_values
            done;
          iv 0);
      ignore (Kernel.call1 ctx ~import:"callee.scribble" []);
      ignore (Kernel.call1 ctx ~import:"callee.scribble" []))
  in
  run ();
  ignore k;
  Alcotest.(check int) "two passes" 2 !pass;
  Alcotest.(check bool) "window zeroed" true
    (List.for_all (fun v -> v = 0) !second_run_values);
  Alcotest.(check int) "words checked" 32 (List.length !second_run_values)

let test_trusted_stack_exhaustion () =
  (* 4 trusted frames; the root call takes one, so deep recursion must
     hit Trusted_stack_exhausted and unwind cleanly. *)
  let result = ref 0 in
  let _k, run = boot (fun _k ctx ->
      match Kernel.call1 ctx ~import:"recurse.deep" [ iv 10 ] with
      | Ok v -> result := ti v
      | Error e -> Alcotest.failf "root call failed: %a" Kernel.pp_call_error e)
  in
  run ();
  (* The deepest frame reports -100; each level above adds 1. *)
  Alcotest.(check bool)
    (Printf.sprintf "exhaustion surfaced (got %d)" !result)
    true (!result < 0)

let test_switcher_is_small () =
  (* §5.1.1: the TCB assembly stays small and auditable. *)
  Alcotest.(check bool) "switcher under 200 instructions" true
    (Switcher.instruction_count < 200);
  Alcotest.(check bool) "switcher over 80 instructions" true
    (Switcher.instruction_count > 80)

let test_sealed_export_not_directly_usable () =
  (* The import-table entry for a compartment call is sealed: a caller
     cannot read the callee's export table through it. *)
  let _k, run = boot (fun k ctx ->
      let l = Loader.find_comp (Kernel.loader k) "caller" in
      let slot = Loader.import_slot l "callee.probe" in
      let sealed =
        Machine.load_cap (Kernel.machine k) ~auth:l.Loader.lc_import_cap
          ~addr:(Loader.import_slot_addr l slot)
      in
      Alcotest.(check bool) "sealed" true (Cap.is_sealed sealed);
      match
        Machine.load (Kernel.machine k) ~auth:sealed ~addr:(Cap.base sealed) ~size:4
      with
      | _ -> Alcotest.fail "read through sealed export capability"
      | exception Memory.Fault _ -> ();
      ignore ctx)
  in
  run ()

let suite =
  [
    Alcotest.test_case "callee register state" `Quick test_callee_register_state;
    Alcotest.test_case "caller registers after return" `Quick
      test_caller_register_state_after_return;
    Alcotest.test_case "stack window zeroed" `Quick test_stack_window_zeroed_between_calls;
    Alcotest.test_case "trusted stack exhaustion" `Quick test_trusted_stack_exhaustion;
    Alcotest.test_case "switcher is small" `Quick test_switcher_is_small;
    Alcotest.test_case "sealed exports opaque" `Quick test_sealed_export_not_directly_usable;
  ]

let () = Alcotest.run "cheriot_switcher" [ ("switcher", suite) ]
