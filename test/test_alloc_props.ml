(* Property-based stress of the shared heap: randomized operation
   sequences (allocate / free / claim / release) must preserve the
   allocator's core invariants.  Randomness comes from the explicit
   seed in [Qcheck_seed], printed on failure for exact replay. *)

module Cap = Capability
module F = Firmware
module A = Allocator

let firmware () =
  System.image ~name:"alloc-props"
    ~sealed_objects:
      [
        A.alloc_capability ~name:"qa" ~quota:16384;
        A.alloc_capability ~name:"qb" ~quota:16384;
      ]
    ~threads:[ F.thread ~name:"main" ~comp:"app" ~entry:"main" ~stack_size:2048 () ]
    [
      F.compartment "app" ~globals_size:32
        ~entries:[ F.entry "main" ~arity:0 ~min_stack:512 ]
        ~imports:
          (A.client_imports
          @ Scheduler.client_imports @ Queue_comp.client_imports
          @ [ F.Static_sealed { target = "qa" }; F.Static_sealed { target = "qb" } ]);
    ]

let run_ops main =
  let machine = Machine.create () in
  let sys = Result.get_ok (System.boot ~machine (firmware ())) in
  let out = ref None in
  Kernel.implement1 sys.System.kernel ~comp:"app" ~entry:"main" (fun ctx _ ->
      out := Some (main sys ctx);
      Cap.null);
  System.run ~until_cycles:4_000_000_000 sys;
  Option.get !out

let quota ctx name =
  let l = Loader.find_comp (Kernel.loader ctx.Kernel.kernel) "app" in
  Machine.load_cap (Kernel.machine ctx.Kernel.kernel) ~auth:l.Loader.lc_import_cap
    ~addr:(Loader.import_slot_addr l (Loader.import_slot l ("sealed:" ^ name)))

type op = Alloc of int | Free of int | Claim of int | Release of int | Sweep

let gen_ops =
  QCheck.Gen.(
    list_size (int_range 5 60)
      (frequency
         [
           (4, map (fun s -> Alloc (8 + (s mod 700))) nat);
           (3, map (fun i -> Free i) (int_bound 20));
           (1, map (fun i -> Claim i) (int_bound 20));
           (1, map (fun i -> Release i) (int_bound 20));
           (1, return Sweep);
         ]))

let print_ops ops =
  String.concat ";"
    (List.map
       (function
         | Alloc n -> Printf.sprintf "A%d" n
         | Free i -> Printf.sprintf "F%d" i
         | Claim i -> Printf.sprintf "C%d" i
         | Release i -> Printf.sprintf "R%d" i
         | Sweep -> "S")
       ops)

(* Execute an op sequence; track live allocations and claims; then check
   invariants. *)
let run_sequence ops =
  run_ops (fun sys ctx ->
      let machine = sys.System.machine in
      let qa = quota ctx "qa" and qb = quota ctx "qb" in
      let live = ref [] in
      (* (cap, claimed) list *)
      let nth i = List.nth_opt !live (if !live = [] then 0 else i mod List.length !live) in
      List.iter
        (fun op ->
          match op with
          | Alloc size -> (
              match A.allocate ctx ~alloc_cap:qa size with
              | Ok c -> live := (c, false) :: !live
              | Error _ -> ())
          | Free i -> (
              match nth i with
              | Some (c, false) ->
                  (match A.free ctx ~alloc_cap:qa c with
                  | Ok () -> live := List.filter (fun (c', _) -> c' != c) !live
                  | Error _ -> ())
              | _ -> ())
          | Claim i -> (
              match nth i with
              | Some (c, false) ->
                  (match A.claim ctx ~alloc_cap:qb c with
                  | Ok () ->
                      live :=
                        List.map (fun (c', cl) -> if c' == c then (c', true) else (c', cl)) !live
                  | Error _ -> ())
              | _ -> ())
          | Release i -> (
              match nth i with
              | Some (c, true) ->
                  ignore (A.free ctx ~alloc_cap:qb c);
                  live :=
                    List.map (fun (c', cl) -> if c' == c then (c', false) else (c', cl)) !live
              | _ -> ())
          | Sweep ->
              Machine.revoker_kick machine;
              Machine.run_revoker_to_completion machine)
        ops;
      (* Invariant 1: all live allocations are usable and disjoint. *)
      let disjoint =
        let rec check = function
          | [] -> true
          | (c, _) :: rest ->
              List.for_all
                (fun (c', _) ->
                  Cap.top c <= Cap.base c' || Cap.top c' <= Cap.base c)
                rest
              && check rest
        in
        check !live
      in
      let usable =
        List.for_all
          (fun (c, _) ->
            match Machine.store machine ~auth:c ~addr:(Cap.base c) ~size:4 1 with
            | () -> true
            | exception Memory.Fault _ -> false)
          !live
      in
      (* Invariant 2: freeing everything refunds both quotas fully. *)
      List.iter
        (fun (c, claimed) ->
          if claimed then ignore (A.free ctx ~alloc_cap:qb c);
          ignore (A.free ctx ~alloc_cap:qa c))
        !live;
      let qa_back = A.quota_remaining ctx ~alloc_cap:qa = Ok 16384 in
      let qb_back = A.quota_remaining ctx ~alloc_cap:qb = Ok 16384 in
      disjoint && usable && qa_back && qb_back)

let prop_alloc_invariants =
  QCheck.Test.make ~name:"randomized heap ops preserve invariants" ~count:25
    (QCheck.make ~print:print_ops gen_ops)
    run_sequence

let prop_no_live_overlap_with_reuse =
  QCheck.Test.make ~name:"reused memory never overlaps live allocations" ~count:15
    (QCheck.make QCheck.Gen.(list_size (int_range 10 40) (int_range 8 256)))
    (fun sizes ->
      run_ops (fun sys ctx ->
          let machine = sys.System.machine in
          let qa = quota ctx "qa" in
          (* Alternate: allocate two, free the first, sweep, allocate
             again — the fresh one must not alias the survivor. *)
          let ok = ref true in
          List.iter
            (fun size ->
              match
                (A.allocate ctx ~alloc_cap:qa size, A.allocate ctx ~alloc_cap:qa size)
              with
              | Ok a, Ok b ->
                  ignore (A.free ctx ~alloc_cap:qa a);
                  Machine.revoker_kick machine;
                  Machine.run_revoker_to_completion machine;
                  (match A.allocate ctx ~alloc_cap:qa size with
                  | Ok c ->
                      if Cap.base c < Cap.top b && Cap.base b < Cap.top c then
                        ok := false;
                      ignore (A.free ctx ~alloc_cap:qa c)
                  | Error _ -> ());
                  ignore (A.free ctx ~alloc_cap:qa b)
              | Ok a, Error _ -> ignore (A.free ctx ~alloc_cap:qa a)
              | Error _, _ -> ())
            sizes;
          !ok))

let suite =
  [
    Qcheck_seed.to_alcotest prop_alloc_invariants;
    Qcheck_seed.to_alcotest prop_no_live_overlap_with_reuse;
  ]

let () = Alcotest.run "cheriot_alloc_props" [ ("heap-properties", suite) ]
