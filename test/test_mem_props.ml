(* Equivalence properties for the host-performance fast paths in
   {!Memory} (word-wide data access, tag-bitmap-indexed revoker sweeps,
   incremental granule counts).  The optimisations must be
   observationally invisible: each property drives an optimised path and
   a byte-at-a-time / sweep-everything reference over the same random
   inputs and requires identical observable state.  Seeded via
   {!Qcheck_seed} so failures replay with [QCHECK_SEED=<seed>]. *)

module Cap = Capability

let base = 0x2000_0000
let size = 16 * 1024 (* 2048 granules *)
let granules = size / Memory.granule_size
let mk () = Memory.create ~base ~size
let auth () = Cap.make_root ~base ~top:(base + size) ~perms:Perm.Set.universe

(* A capability whose base lands in granule [g] (kept off granule 0,
   where the test authority's own base lives). *)
let obj_cap g =
  let g = 1 + (g mod (granules - 1)) in
  let addr = base + (g * Memory.granule_size) in
  Cap.exn (Cap.set_bounds (Cap.with_address_exn (auth ()) addr) ~length:Memory.granule_size)

(* Random op streams are encoded as plain ints so the generator stays a
   [QCheck.list int]; [decode] turns one int into one memory operation,
   returned as [apply_fast, apply_ref] closures over the two memories. *)
type op = {
  describe : string;
  fast : Memory.t -> unit; (* word-wide / optimised path *)
  reference : Memory.t -> unit; (* byte-at-a-time equivalent *)
}

let same f = { describe = "shared"; fast = f; reference = f }

let decode n =
  let n = abs n in
  let kind = n mod 8 and r = n / 8 in
  match kind with
  | 0 | 1 | 2 ->
      (* Data store: the fast side stores [sz] bytes in one access, the
         reference side issues [sz] single-byte stores (the pre-word-wide
         code path).  Naturally aligned, so both touch the same granule
         set and must clear the same tags. *)
      let sz = [| 1; 2; 4 |].(kind) in
      let addr = base + (r mod (size - 4) land lnot (sz - 1)) in
      let v = r * 2654435761 in
      {
        describe = Printf.sprintf "store %d@%x" sz addr;
        fast = (fun m -> Memory.store_priv m ~addr ~size:sz v);
        reference =
          (fun m ->
            for i = 0 to sz - 1 do
              Memory.store_priv m ~addr:(addr + i) ~size:1 ((v lsr (8 * i)) land 0xff)
            done);
      }
  | 3 ->
      let g = r mod granules in
      let addr = base + (g * Memory.granule_size) in
      same (fun m -> Memory.store_cap_priv m ~addr (obj_cap (r / granules)))
  | 4 ->
      (* zero_priv takes the bitmap-skipping cap_clear_range path. *)
      let addr = base + (r mod (size - 256)) in
      let len = 1 + (r mod 200) in
      {
        describe = Printf.sprintf "zero %d@%x" len addr;
        fast = (fun m -> Memory.zero_priv m ~addr ~len);
        reference =
          (fun m ->
            for i = 0 to len - 1 do
              Memory.store_priv m ~addr:(addr + i) ~size:1 0
            done);
      }
  | 5 -> same (fun m -> Memory.flip_bit m ~addr:(base + (r mod size)) ~bit:r)
  | 6 -> same (fun m -> ignore (Memory.clear_tag_at m (base + (r mod size))))
  | _ ->
      let addr = base + (r mod (size - 64)) in
      let len = 1 + (r mod 64) in
      same (fun m ->
          if r land 1 = 0 then Memory.set_revoked m ~addr ~len
          else Memory.clear_revoked m ~addr ~len)

let caps_of m =
  let acc = ref [] in
  Memory.iter_caps m (fun ~addr c -> acc := (addr, Cap.address c) :: !acc);
  List.rev !acc

(* Full observable state: every byte (read through the reference-size
   path), every tag, every revocation bit. *)
let states_agree a b =
  let ok = ref true in
  for off = 0 to size - 1 do
    if
      Memory.load_priv a ~addr:(base + off) ~size:1
      <> Memory.load_priv b ~addr:(base + off) ~size:1
    then ok := false
  done;
  !ok && caps_of a = caps_of b
  && List.init granules (fun g -> Memory.is_revoked a (base + (g * 8)))
     = List.init granules (fun g -> Memory.is_revoked b (base + (g * 8)))

let ops_arb = QCheck.(list_of_size Gen.(0 -- 60) (int_bound 100_000_000))

let prop_word_byte_equiv =
  QCheck.Test.make ~name:"word-wide ops == byte-loop reference" ~count:150 ops_arb
    (fun ns ->
      let a = mk () and b = mk () in
      List.iter
        (fun n ->
          let op = decode n in
          op.fast a;
          op.reference b)
        ns;
      (* Word-size reads over the final state must also agree with byte
         composition, including over raw capability encodings. *)
      let words_agree = ref true in
      for w = 0 to (size / 4) - 1 do
        let addr = base + (w * 4) in
        let byte i = Memory.load_priv b ~addr:(addr + i) ~size:1 in
        let expect = byte 0 lor (byte 1 lsl 8) lor (byte 2 lsl 16) lor (byte 3 lsl 24) in
        if Memory.load_priv a ~addr ~size:4 <> expect then words_agree := false
      done;
      states_agree a b && !words_agree)

let prop_checked_load_equiv =
  QCheck.Test.make ~name:"checked word load == byte composition; misaligned faults"
    ~count:300
    QCheck.(triple (int_bound (size - 8)) (int_bound 2) (int_bound 0xffffff))
    (fun (off, szi, v) ->
      let m = mk () in
      let auth = auth () in
      let sz = [| 1; 2; 4 |].(szi) in
      Memory.store_priv m ~addr:(base + (off land lnot 3)) ~size:4 v;
      let addr = base + off in
      if addr mod sz <> 0 then
        match Memory.load ~auth m ~addr ~size:sz with
        | _ -> false
        | exception Memory.Fault { cause = Cap.Bounds_violation; _ } -> true
      else
        let byte i = Memory.load ~auth m ~addr:(addr + i) ~size:1 in
        let expect = List.init sz byte |> List.mapi (fun i b -> b lsl (8 * i)) |> List.fold_left ( lor ) 0 in
        Memory.load ~auth m ~addr ~size:sz = expect)

(* Sweep equivalence: visiting only bitmap-indexed tagged granules must
   invalidate exactly what visiting every granule does. *)
let prop_sweep_bitmap_equiv =
  QCheck.Test.make ~name:"sweep via next_tagged == sweep all granules" ~count:150
    QCheck.(pair (list_of_size Gen.(0 -- 30) (int_bound 100_000)) (list_of_size Gen.(0 -- 10) (int_bound (granules - 1))))
    (fun (cap_slots, revoked_gs) ->
      let a = mk () and b = mk () in
      List.iter
        (fun n ->
          let slot = base + (n mod granules * 8) in
          List.iter (fun m -> Memory.store_cap_priv m ~addr:slot (obj_cap (n / granules))) [ a; b ])
        cap_slots;
      List.iter
        (fun g -> List.iter (fun m -> Memory.set_revoked m ~addr:(base + (g * 8)) ~len:8) [ a; b ])
        revoked_gs;
      let swept_a = ref 0 and swept_b = ref 0 in
      let rec sweep_tagged from =
        match Memory.next_tagged a ~from with
        | None -> ()
        | Some g ->
            if Memory.sweep_granule a g then incr swept_a;
            sweep_tagged (g + 1)
      in
      sweep_tagged 0;
      for g = 0 to granules - 1 do
        if Memory.sweep_granule b g then incr swept_b
      done;
      !swept_a = !swept_b && caps_of a = caps_of b)

let prop_counts_coherent =
  QCheck.Test.make ~name:"incremental counts == recount; next_tagged == scan" ~count:150
    (QCheck.pair ops_arb (QCheck.int_bound (granules - 1)))
    (fun (ns, from) ->
      let m = mk () in
      List.iter (fun n -> (decode n).fast m) ns;
      let tagged = List.length (caps_of m) in
      let revoked = ref 0 in
      for g = 0 to granules - 1 do
        if Memory.is_revoked m (base + (g * 8)) then incr revoked
      done;
      let scan_next =
        List.find_opt (fun (addr, _) -> (addr - base) / 8 >= from) (caps_of m)
        |> Option.map (fun (addr, _) -> (addr - base) / 8)
      in
      Memory.tagged_granule_count m = tagged
      && Memory.revoked_granule_count m = !revoked
      && Memory.next_tagged m ~from = scan_next)

let suite =
  List.map Qcheck_seed.to_alcotest
    [
      prop_word_byte_equiv;
      prop_checked_load_equiv;
      prop_sweep_bitmap_equiv;
      prop_counts_coherent;
    ]

let () = Alcotest.run "cheriot_mem_props" [ ("mem-equivalence", suite) ]
