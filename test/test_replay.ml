(* The record-replay contract (lib/replay): the simulation is a pure
   function of its journaled inputs, so recording a run and re-running
   it under a verifying handler must consume the journal exactly and
   reproduce the outcome bit-for-bit — for a full fault-campaign
   scenario and for a bare netsim workload.  Error taxonomy is pinned
   too: a cut-short journal fails as Truncated (never as a spurious
   divergence), a run that ends early as Excess, a wrong-seed re-run as
   Divergence with the first mismatching entry. *)

let record_scenario ~seed =
  let session = ref None in
  let outcome =
    Fault_campaign.run_scenario
      ~prepare:(fun m -> session := Some (Replay.record m))
      ~seed ()
  in
  let s = Option.get !session in
  let journal = Replay.recorded s in
  Replay.finish s;
  (journal, outcome)

let verify_scenario ~seed journal =
  let session = ref None in
  let outcome =
    Fault_campaign.run_scenario
      ~prepare:(fun m -> session := Some (Replay.verify m journal))
      ~seed ()
  in
  let s = Option.get !session in
  Replay.finish s;
  (outcome, Replay.matched s)

(* One recorded campaign scenario shared across the tests below. *)
let recorded_11 = lazy (record_scenario ~seed:11)

let has_prefix p s =
  String.length s >= String.length p && String.sub s 0 (String.length p) = p

let test_campaign_roundtrip () =
  let journal, o1 = Lazy.force recorded_11 in
  Alcotest.(check bool) "journal non-empty" true (journal <> []);
  Alcotest.(check bool) "journals IRQ raises" true
    (List.exists (fun e -> has_prefix "irq " e.Replay.e_payload) journal);
  Alcotest.(check bool) "journals fault injections" true
    (List.exists (fun e -> has_prefix "fault " e.Replay.e_payload) journal);
  Alcotest.(check bool) "journals frame deliveries" true
    (List.exists (fun e -> has_prefix "frame " e.Replay.e_payload) journal);
  let o2, matched = verify_scenario ~seed:11 journal in
  Alcotest.(check int) "every entry matched" (List.length journal) matched;
  Alcotest.(check bool) "outcome bit-identical under verification" true
    (o1 = o2)

let test_save_load_roundtrip () =
  let journal, _ = Lazy.force recorded_11 in
  let path = Filename.temp_file "cheriot_replay" ".journal" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Replay.save path ~header:"campaign seed 11" journal;
      let header, loaded = Replay.load path in
      Alcotest.(check string) "header" "campaign seed 11" header;
      Alcotest.(check bool) "entries survive the file format" true
        (loaded = journal))

let test_truncated_is_clean () =
  let journal, _ = Lazy.force recorded_11 in
  let n = List.length journal in
  let cut = List.filteri (fun i _ -> i < n - 5) journal in
  match verify_scenario ~seed:11 cut with
  | _ -> Alcotest.fail "expected Replay_error Truncated"
  | exception Replay.Replay_error (Replay.Truncated { index; _ }) ->
      Alcotest.(check int) "fails exactly at the cut" (n - 5) index
  | exception Replay.Replay_error e ->
      Alcotest.failf "wrong error class: %s" (Replay.error_to_string e)

let test_excess_on_short_run () =
  let journal, _ = Lazy.force recorded_11 in
  let last =
    List.fold_left (fun _ e -> e.Replay.e_cycle) 0 journal
  in
  let padded =
    journal
    @ [
        { Replay.e_cycle = last + 1_000; e_payload = "irq 0" };
        { Replay.e_cycle = last + 2_000; e_payload = "irq 0" };
      ]
  in
  match verify_scenario ~seed:11 padded with
  | _ -> Alcotest.fail "expected Replay_error Excess"
  | exception Replay.Replay_error (Replay.Excess { remaining; _ }) ->
      Alcotest.(check int) "both padded entries unconsumed" 2 remaining
  | exception Replay.Replay_error e ->
      Alcotest.failf "wrong error class: %s" (Replay.error_to_string e)

let test_cross_seed_diverges () =
  let journal, _ = Lazy.force recorded_11 in
  match verify_scenario ~seed:12 journal with
  | _ -> Alcotest.fail "expected Replay_error Divergence"
  | exception Replay.Replay_error (Replay.Divergence _) -> ()
  | exception Replay.Replay_error e ->
      Alcotest.failf "wrong error class: %s" (Replay.error_to_string e)

(* A bare netsim workload, no kernel: two timed frames from the world
   plus the Ethernet IRQs they raise.  Same schedule, same journal. *)
let netsim_run session_of =
  let machine = Machine.create () in
  let session = session_of machine in
  let net = Netsim.attach ~latency:2_000 machine in
  Netsim.ping_of_death_at net ~cycles:5_000 ~size:120;
  Netsim.ping_of_death_at net ~cycles:11_000 ~size:600;
  (* Stepped ticks, as a polling driver would: frames fire at their
     scheduled cycles and their Ethernet IRQs land on later ticks. *)
  for _ = 1 to 30 do
    Machine.tick machine 1_000
  done;
  session

let test_netsim_roundtrip () =
  let rec_session = netsim_run Replay.record in
  let journal = Replay.recorded rec_session in
  Replay.finish rec_session;
  Alcotest.(check bool) "frames journaled" true
    (List.exists (fun e -> has_prefix "frame " e.Replay.e_payload) journal);
  Alcotest.(check bool) "ethernet IRQ journaled" true
    (List.exists
       (fun e ->
         e.Replay.e_payload = "irq " ^ string_of_int Machine.ethernet_irq)
       journal);
  let ver_session = netsim_run (fun m -> Replay.verify m journal) in
  Alcotest.(check int) "netsim replay matches every entry"
    (List.length journal)
    (Replay.matched ver_session);
  Replay.finish ver_session

let test_double_attach_refused () =
  let machine = Machine.create () in
  let s = Replay.record machine in
  (match Replay.record machine with
  | _ -> Alcotest.fail "second session must be refused"
  | exception Invalid_argument _ -> ());
  Replay.finish s

let test_load_errors () =
  let write path s =
    let oc = open_out path in
    output_string oc s;
    close_out oc
  in
  let path = Filename.temp_file "cheriot_replay" ".journal" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      write path "not a journal\n";
      (match Replay.load path with
      | _ -> Alcotest.fail "bad magic must fail"
      | exception Failure _ -> ());
      write path "cheriot-replay 1 hdr\n12 irq 0\nbogus line without cycle\n";
      match Replay.load path with
      | _ -> Alcotest.fail "malformed line must fail"
      | exception Failure m ->
          Alcotest.(check bool) "error names the line" true
            (has_prefix path m))

let test_bisection () =
  let e c p = { Replay.e_cycle = c; e_payload = p } in
  let a = [ e 100 "irq 0"; e 25_000 "irq 1"; e 25_500 "fault x" ] in
  let b = [ e 100 "irq 0"; e 25_000 "irq 1"; e 26_000 "fault x" ] in
  (match Replay.first_divergence a b with
  | Some (2, Some x, Some y) ->
      Alcotest.(check int) "left cycle" 25_500 x.Replay.e_cycle;
      Alcotest.(check int) "right cycle" 26_000 y.Replay.e_cycle
  | _ -> Alcotest.fail "expected divergence at index 2");
  (match Replay.first_divergent_window ~window:10_000 a b with
  | Some (2, wa, wb) ->
      (* window 2 = cycles [20000, 30000): both journals' entries there *)
      Alcotest.(check int) "left window entries" 2 (List.length wa);
      Alcotest.(check int) "right window entries" 2 (List.length wb)
  | _ -> Alcotest.fail "expected divergent window 2");
  Alcotest.(check bool) "identical journals have no report" true
    (Replay.divergence_report a a = None);
  Alcotest.(check bool) "differing journals report" true
    (Replay.divergence_report a b <> None)

let () =
  Alcotest.run "cheriot_replay"
    [
      ( "replay",
        [
          Alcotest.test_case "campaign record == replay" `Quick
            test_campaign_roundtrip;
          Alcotest.test_case "journal file round-trip" `Quick
            test_save_load_roundtrip;
          Alcotest.test_case "truncated journal fails clean" `Quick
            test_truncated_is_clean;
          Alcotest.test_case "short run leaves excess" `Quick
            test_excess_on_short_run;
          Alcotest.test_case "wrong seed diverges" `Quick
            test_cross_seed_diverges;
          Alcotest.test_case "netsim workload record == replay" `Quick
            test_netsim_roundtrip;
          Alcotest.test_case "double attach refused" `Quick
            test_double_attach_refused;
          Alcotest.test_case "load error reporting" `Quick test_load_errors;
          Alcotest.test_case "divergence bisection" `Quick test_bisection;
        ] );
    ]
