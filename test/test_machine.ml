(* Tests for the machine composition: clock, MMIO, timer, revoker. *)

module Cap = Capability

let mk () = Machine.create ~sram_size:(64 * 1024) ()

let rw m =
  Cap.make_root ~base:(Machine.sram_base m)
    ~top:(Machine.sram_base m + Machine.sram_size m)
    ~perms:Perm.Set.read_write

let test_tick_advances () =
  let m = mk () in
  Machine.tick m 100;
  Alcotest.(check int) "cycles" 100 (Machine.cycles m)

let test_access_charges_cycles () =
  let m = mk () in
  let auth = rw m in
  let c0 = Machine.cycles m in
  ignore (Machine.load m ~auth ~addr:(Machine.sram_base m) ~size:4);
  Alcotest.(check bool) "load charged" true (Machine.cycles m > c0)

let test_mmio_device () =
  let m = mk () in
  let dev = Machine.Device.ram ~name:"led" ~size:16 in
  Machine.add_device m ~base:0x1000_0000 ~size:16 dev;
  let auth =
    Cap.make_root ~base:0x1000_0000 ~top:0x1000_0010 ~perms:Perm.Set.read_write
  in
  Machine.store m ~auth ~addr:0x1000_0004 ~size:4 0x42;
  Alcotest.(check int) "device readback" 0x42
    (Machine.load m ~auth ~addr:0x1000_0004 ~size:4);
  (* A capability for SRAM must not reach the device. *)
  (match Machine.load m ~auth:(rw m) ~addr:0x1000_0004 ~size:4 with
  | _ -> Alcotest.fail "expected bounds fault"
  | exception Memory.Fault _ -> ());
  Alcotest.(check bool) "region listed" true
    (List.exists (fun (n, _, _) -> n = "led") (Machine.device_regions m))

let test_unmapped_address_faults () =
  let m = mk () in
  let auth = Cap.make_root ~base:0 ~top:0x4000_0000 ~perms:Perm.Set.read_write in
  match Machine.load m ~auth ~addr:0x0900_0000 ~size:4 with
  | _ -> Alcotest.fail "expected fault"
  | exception Memory.Fault { cause = Cap.Bounds_violation; _ } -> ()

let test_timer_irq () =
  let m = mk () in
  let fired = ref [] in
  Machine.set_deliver_hook m (Some (fun irq -> fired := irq :: !fired));
  Machine.set_timer m (Some 50);
  Machine.tick m 10;
  Alcotest.(check (list int)) "not yet" [] !fired;
  Machine.tick m 100;
  Alcotest.(check (list int)) "timer fired" [ Machine.timer_irq ] !fired

let test_irq_disabled_defers () =
  let m = mk () in
  let fired = ref 0 in
  Machine.set_deliver_hook m (Some (fun _ -> incr fired));
  Machine.set_irq_enabled m false;
  Machine.raise_irq m Machine.timer_irq;
  Machine.tick m 10;
  Alcotest.(check int) "deferred" 0 !fired;
  Machine.set_irq_enabled m true;
  Machine.tick m 1;
  Alcotest.(check int) "delivered on enable+tick" 1 !fired

let test_revoker_sweep_completes () =
  let m = mk () in
  let auth = rw m in
  let base = Machine.sram_base m in
  (* Plant a dangling cap, mark its target revoked, run the revoker. *)
  let obj = Cap.exn (Cap.set_bounds (Cap.with_address_exn auth (base + 1024)) ~length:32) in
  Memory.store_cap_priv (Machine.mem m) ~addr:(base + 512) obj;
  Memory.set_revoked (Machine.mem m) ~addr:(base + 1024) ~len:32;
  Alcotest.(check int) "epoch 0" 0 (Machine.revoker_epoch m);
  Machine.revoker_kick m;
  Alcotest.(check bool) "busy" true (Machine.revoker_busy m);
  Machine.run_revoker_to_completion m;
  Alcotest.(check int) "epoch 1" 1 (Machine.revoker_epoch m);
  Alcotest.(check bool) "irq pending" true (Machine.pending m Machine.revoker_irq);
  let c = Memory.load_cap_priv (Machine.mem m) ~addr:(base + 512) in
  Alcotest.(check bool) "cap swept" false (Cap.tag c)

let test_revoker_sweep_duration () =
  (* A sweep should take granules * rate cycles, matching the paper's
     ~1.5 ms per MiB figure when scaled. *)
  let m = mk () in
  Machine.set_revoker_rate m ~cycles_per_granule:3;
  Machine.revoker_kick m;
  let t0 = Machine.cycles m in
  Machine.run_revoker_to_completion m;
  let dt = Machine.cycles m - t0 in
  let expected = Memory.granule_count (Machine.mem m) * 3 in
  Alcotest.(check bool)
    (Printf.sprintf "sweep %d cycles ~ %d" dt expected)
    true
    (abs (dt - expected) < 200)

let test_listener_period () =
  let m = mk () in
  let fired = ref [] in
  ignore (Machine.add_tick_listener ~period:10 m (fun c -> fired := c :: !fired));
  Machine.tick m 5;
  Alcotest.(check (list int)) "before due" [] !fired;
  Machine.tick m 5;
  Alcotest.(check (list int)) "fires at period" [ 10 ] !fired;
  (* One big tick past several periods: listeners run at tick
     granularity, so this is a single call at the current cycle. *)
  Machine.tick m 25;
  Alcotest.(check (list int)) "one call per tick" [ 35; 10 ] (!fired)

let test_listener_every_tick_default () =
  let m = mk () in
  let calls = ref 0 in
  ignore (Machine.add_tick_listener m (fun _ -> incr calls));
  Machine.tick m 3;
  Machine.tick m 1;
  Machine.tick m 7;
  Alcotest.(check int) "legacy: every tick call" 3 !calls

let test_listener_remove () =
  let m = mk () in
  let calls = ref 0 in
  let h = Machine.add_tick_listener m (fun _ -> incr calls) in
  Machine.tick m 1;
  Machine.tick m 1;
  Machine.remove_tick_listener m h;
  Machine.tick m 1;
  Machine.tick m 1;
  Alcotest.(check int) "stopped after remove" 2 !calls

let test_listener_parked_wakeup () =
  let m = mk () in
  let fired = ref [] in
  let h = Machine.add_tick_listener ~period:0 m (fun c -> fired := c :: !fired) in
  Machine.tick m 50;
  Alcotest.(check (list int)) "parked" [] !fired;
  Machine.set_listener_wakeup m h ~at:80;
  Machine.tick m 10;
  Alcotest.(check (list int)) "still early" [] !fired;
  Machine.tick m 30;
  Alcotest.(check (list int)) "woken once" [ 90 ] !fired;
  Machine.tick m 100;
  Alcotest.(check (list int)) "parked again" [ 90 ] !fired

let test_seconds_conversion () =
  Alcotest.(check bool) "33 MHz" true
    (abs_float (Machine.seconds_of_cycles 33_000_000 -. 1.0) < 1e-9)

let suite =
  [
    Alcotest.test_case "tick advances" `Quick test_tick_advances;
    Alcotest.test_case "access charges" `Quick test_access_charges_cycles;
    Alcotest.test_case "mmio device" `Quick test_mmio_device;
    Alcotest.test_case "unmapped faults" `Quick test_unmapped_address_faults;
    Alcotest.test_case "timer irq" `Quick test_timer_irq;
    Alcotest.test_case "irq disabled defers" `Quick test_irq_disabled_defers;
    Alcotest.test_case "revoker completes" `Quick test_revoker_sweep_completes;
    Alcotest.test_case "revoker duration" `Quick test_revoker_sweep_duration;
    Alcotest.test_case "listener period" `Quick test_listener_period;
    Alcotest.test_case "listener every tick" `Quick test_listener_every_tick_default;
    Alcotest.test_case "listener remove" `Quick test_listener_remove;
    Alcotest.test_case "listener parked wakeup" `Quick test_listener_parked_wakeup;
    Alcotest.test_case "seconds conversion" `Quick test_seconds_conversion;
  ]

let () = Alcotest.run "cheriot_machine" [ ("machine", suite) ]
