(* The mixed-fault campaign in quick mode (the 200-scenario long mode
   lives behind `bench campaign` / FAULT_CAMPAIGN_ITERS), plus the
   determinism contract: a scenario is a pure function of its seed, so
   any failure replays byte-for-byte. *)

let test_campaign_quick () =
  let n = Fault_campaign.iters ~default:8 in
  let failures, outcomes = Fault_campaign.run ~base_seed:1_000 ~n () in
  Alcotest.(check int) "no invariant violations" 0 failures;
  let faults =
    List.fold_left (fun a o -> a + o.Fault_campaign.oc_faults) 0 outcomes
  in
  Alcotest.(check bool) "faults were actually injected" true (faults > 0);
  let reboots =
    List.fold_left (fun a o -> a + o.Fault_campaign.oc_reboots) 0 outcomes
  in
  ignore reboots (* crash faults are rare; reboots may be zero in 8 runs *)

let test_replay_deterministic () =
  let a = Fault_campaign.run_scenario ~seed:42 () in
  let b = Fault_campaign.run_scenario ~seed:42 () in
  Alcotest.(check (list string))
    "fault traces identical byte-for-byte" a.Fault_campaign.oc_trace
    b.Fault_campaign.oc_trace;
  Alcotest.(check int) "cycle counts identical" a.Fault_campaign.oc_cycles
    b.Fault_campaign.oc_cycles;
  Alcotest.(check int) "fault counts identical" a.Fault_campaign.oc_faults
    b.Fault_campaign.oc_faults;
  Alcotest.(check int) "reboot counts identical" a.Fault_campaign.oc_reboots
    b.Fault_campaign.oc_reboots;
  Alcotest.(check (list string))
    "seed 42 holds all invariants" [] a.Fault_campaign.oc_violations

(* Every line of the engine's fault trace must have a twin
   [Obs.Fault_note] event in the machine's trace, with the identical
   message and the identical cycle stamp — a 1:1 match, in order. *)
let test_faults_appear_in_trace () =
  let obs = Obs.create ~capacity:(1 lsl 16) () in
  let o = Fault_campaign.run_scenario ~trace:obs ~seed:42 () in
  Alcotest.(check int) "no trace events dropped" 0 (Obs.dropped obs);
  let notes =
    List.filter_map
      (fun e ->
        match e.Obs.kind with
        | Obs.Fault_note { note } ->
            Some (Printf.sprintf "[%d] %s" e.Obs.cycle note)
        | _ -> None)
      (Obs.events obs)
  in
  Alcotest.(check (list string))
    "fault trace lines == Fault_note events (message + cycle stamp)"
    o.Fault_campaign.oc_trace notes;
  Alcotest.(check bool) "campaign actually injected faults" true
    (o.Fault_campaign.oc_faults > 0);
  (* The sink changes nothing observable: the traced scenario replays
     byte-for-byte against an untraced run of the same seed. *)
  let plain = Fault_campaign.run_scenario ~seed:42 () in
  Alcotest.(check int) "cycles identical with trace sink attached"
    plain.Fault_campaign.oc_cycles o.Fault_campaign.oc_cycles;
  Alcotest.(check (list string))
    "fault history identical with trace sink attached"
    plain.Fault_campaign.oc_trace o.Fault_campaign.oc_trace

(* The flight recorder rides every scenario: each injected crash yields
   exactly one well-formed dump blaming the injected target (these are
   also campaign invariants — a violation would fail oc_violations on
   all 200 long-mode scenarios — but this pins the dump contents
   directly on a seed known to deliver crashes). *)
let test_crash_dumps_match_injected_faults () =
  let o = Fault_campaign.run_scenario ~seed:7 () in
  Alcotest.(check (list string))
    "seed 7 holds all invariants" [] o.Fault_campaign.oc_violations;
  let dumps = o.Fault_campaign.oc_dumps in
  Alcotest.(check bool) "seed 7 delivers crashes" true (dumps <> []);
  let delivered =
    List.length
      (List.filter
         (fun line ->
           Astring.String.is_infix ~affix:"crash delivered" line)
         o.Fault_campaign.oc_trace)
  in
  let injected =
    List.filter (fun d -> d.Forensics.d_cause = "injected crash") dumps
  in
  Alcotest.(check int) "one dump per delivered crash" delivered
    (List.length injected);
  List.iter
    (fun d ->
      Alcotest.(check string) "dump blames the injected target" "svc"
        d.Forensics.d_comp;
      Alcotest.(check int) "full register file" 16
        (List.length d.Forensics.d_regs);
      Alcotest.(check bool) "handler ran" true d.Forensics.d_handler_ran;
      let j = Forensics.dump_json d in
      match Json.of_string (Json.to_string j) with
      | Ok rt ->
          Alcotest.(check bool) "dump JSON round-trips" true (Json.equal j rt)
      | Error e -> Alcotest.failf "dump JSON failed to parse back: %s" e)
    dumps

(* Regression (issue 8 satellite): `bench -- crashdump <seed>
   --from-snapshot` must reproduce a crash observed in a snapshot-mode
   campaign bit-exactly.  run_scenario ~from_snapshot:true takes the
   same restore+reseed path run ~from_snapshot uses instead of
   rebooting, so the three ways of running a seed — fresh boot,
   standalone snapshot replay, and the farmed snapshot campaign — must
   all agree on every observable field, dumps included. *)
let test_from_snapshot_replay_bit_exact () =
  let fingerprint o =
    let dump d =
      Printf.sprintf "%d|%s|%d|%s|%d|%d|%b" d.Forensics.d_cycle
        d.Forensics.d_comp d.Forensics.d_thread d.Forensics.d_cause
        d.Forensics.d_addr d.Forensics.d_pc d.Forensics.d_handler_ran
    in
    ( o.Fault_campaign.oc_trace,
      o.Fault_campaign.oc_cycles,
      o.Fault_campaign.oc_faults,
      o.Fault_campaign.oc_reboots,
      o.Fault_campaign.oc_violations,
      List.map dump o.Fault_campaign.oc_dumps )
  in
  let seeds = [ 42; 43 ] in
  let _, campaign =
    Fault_campaign.run ~from_snapshot:true
      ~base_seed:(List.hd seeds)
      ~n:(List.length seeds) ()
  in
  List.iteri
    (fun i seed ->
      let fresh = Fault_campaign.run_scenario ~seed () in
      let snap = Fault_campaign.run_scenario ~from_snapshot:true ~seed () in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: snapshot replay == fresh boot" seed)
        true
        (fingerprint snap = fingerprint fresh);
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: snapshot replay == farmed campaign" seed)
        true
        (fingerprint snap = fingerprint (List.nth campaign i)))
    seeds

let test_distinct_seeds_diverge () =
  let a = Fault_campaign.run_scenario ~seed:1 () in
  let b = Fault_campaign.run_scenario ~seed:2 () in
  Alcotest.(check bool) "different seeds inject different faults" true
    (a.Fault_campaign.oc_trace <> b.Fault_campaign.oc_trace)

let suite =
  [
    Alcotest.test_case "quick campaign holds invariants" `Quick
      test_campaign_quick;
    Alcotest.test_case "seed replay is deterministic" `Quick
      test_replay_deterministic;
    Alcotest.test_case "every injected fault appears in the trace" `Quick
      test_faults_appear_in_trace;
    Alcotest.test_case "crash dumps match injected faults" `Quick
      test_crash_dumps_match_injected_faults;
    Alcotest.test_case "from-snapshot seed replay is bit-exact" `Quick
      test_from_snapshot_replay_bit_exact;
    Alcotest.test_case "distinct seeds diverge" `Quick
      test_distinct_seeds_diverge;
  ]

let () = Alcotest.run "cheriot_fault_campaign" [ ("fault-campaign", suite) ]
