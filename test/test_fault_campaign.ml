(* The mixed-fault campaign in quick mode (the 200-scenario long mode
   lives behind `bench campaign` / FAULT_CAMPAIGN_ITERS), plus the
   determinism contract: a scenario is a pure function of its seed, so
   any failure replays byte-for-byte. *)

let test_campaign_quick () =
  let n = Fault_campaign.iters ~default:8 in
  let failures, outcomes = Fault_campaign.run ~base_seed:1_000 ~n () in
  Alcotest.(check int) "no invariant violations" 0 failures;
  let faults =
    List.fold_left (fun a o -> a + o.Fault_campaign.oc_faults) 0 outcomes
  in
  Alcotest.(check bool) "faults were actually injected" true (faults > 0);
  let reboots =
    List.fold_left (fun a o -> a + o.Fault_campaign.oc_reboots) 0 outcomes
  in
  ignore reboots (* crash faults are rare; reboots may be zero in 8 runs *)

let test_replay_deterministic () =
  let a = Fault_campaign.run_scenario ~seed:42 () in
  let b = Fault_campaign.run_scenario ~seed:42 () in
  Alcotest.(check (list string))
    "fault traces identical byte-for-byte" a.Fault_campaign.oc_trace
    b.Fault_campaign.oc_trace;
  Alcotest.(check int) "cycle counts identical" a.Fault_campaign.oc_cycles
    b.Fault_campaign.oc_cycles;
  Alcotest.(check int) "fault counts identical" a.Fault_campaign.oc_faults
    b.Fault_campaign.oc_faults;
  Alcotest.(check int) "reboot counts identical" a.Fault_campaign.oc_reboots
    b.Fault_campaign.oc_reboots;
  Alcotest.(check (list string))
    "seed 42 holds all invariants" [] a.Fault_campaign.oc_violations

let test_distinct_seeds_diverge () =
  let a = Fault_campaign.run_scenario ~seed:1 () in
  let b = Fault_campaign.run_scenario ~seed:2 () in
  Alcotest.(check bool) "different seeds inject different faults" true
    (a.Fault_campaign.oc_trace <> b.Fault_campaign.oc_trace)

let suite =
  [
    Alcotest.test_case "quick campaign holds invariants" `Quick
      test_campaign_quick;
    Alcotest.test_case "seed replay is deterministic" `Quick
      test_replay_deterministic;
    Alcotest.test_case "distinct seeds diverge" `Quick
      test_distinct_seeds_diverge;
  ]

let () = Alcotest.run "cheriot_fault_campaign" [ ("fault-campaign", suite) ]
