(* The farm's determinism contract (see farm.mli) and the campaign's use
   of it: results in submission order whatever the job count, jobs = 1
   running entirely in the calling domain, lowest-index exception wins,
   and a parallel fault campaign producing outcome-for-outcome the same
   results as the sequential one. *)

(* Uneven busy-work so that, with several domains, completion order
   differs from submission order. *)
let churn n =
  let acc = ref 0 in
  for i = 1 to (n * 7919) mod 50_000 do
    acc := (!acc + i) land 0xffffff
  done;
  !acc

let test_order_preserved () =
  let n = 37 in
  let tasks = Array.init n (fun i -> fun () -> (i, churn i)) in
  List.iter
    (fun jobs ->
      let got = Farm.run ~jobs tasks in
      Array.iteri
        (fun i (j, _) ->
          Alcotest.(check int) (Printf.sprintf "slot %d (jobs=%d)" i jobs) i j)
        got)
    [ 1; 2; 4; 8; 64 ]

let test_jobs_one_stays_home () =
  let home = Domain.self () in
  let doms =
    Farm.run ~jobs:1 (Array.init 5 (fun _ -> fun () -> Domain.self ()))
  in
  Array.iter
    (fun d ->
      Alcotest.(check bool) "ran in calling domain" true (d = home))
    doms

let test_lowest_index_exception () =
  let tasks =
    Array.init 10 (fun i ->
        fun () ->
          ignore (churn i);
          if i = 3 then failwith "t3";
          if i = 7 then failwith "t7";
          i)
  in
  List.iter
    (fun jobs ->
      match Farm.run ~jobs tasks with
      | _ -> Alcotest.failf "jobs=%d: expected Failure t3" jobs
      | exception Failure m ->
          Alcotest.(check string)
            (Printf.sprintf "lowest-index exception (jobs=%d)" jobs)
            "t3" m)
    [ 1; 4 ]

let test_map_variants () =
  let sq x = x * x in
  let arr = Array.init 20 (fun i -> i) in
  Alcotest.(check (array int))
    "map order" (Array.map sq arr)
    (Farm.map ~jobs:4 sq arr);
  let l = List.init 20 (fun i -> i + 100) in
  Alcotest.(check (list int))
    "map_list order" (List.map sq l)
    (Farm.map_list ~jobs:4 sq l)

let test_empty_and_clamp () =
  Alcotest.(check (array int)) "empty" [||] (Farm.run ~jobs:4 [||]);
  Alcotest.(check (array int))
    "jobs clamped to 1" [| 9 |]
    (Farm.run ~jobs:(-3) [| (fun () -> 9) |])

(* The ISSUE-5 acceptance property, at test scale: a farmed campaign is
   outcome-for-outcome identical to the sequential one.  Outcomes are
   plain data (ints, strings, lists, dump records), so structural
   equality covers everything — cycles, fault traces, crash dumps. *)
let test_campaign_parallel_equals_sequential () =
  let run jobs = Fault_campaign.run ~jobs ~base_seed:5000 ~n:6 () in
  let bad_seq, out_seq = run 1 in
  let bad_par, out_par = run 4 in
  Alcotest.(check int) "violation count" bad_seq bad_par;
  Alcotest.(check int) "outcome count" (List.length out_seq)
    (List.length out_par);
  List.iter2
    (fun a b ->
      Alcotest.(check int) "seed order" a.Fault_campaign.oc_seed b.Fault_campaign.oc_seed;
      Alcotest.(check bool)
        (Printf.sprintf "outcome for seed %d identical" a.Fault_campaign.oc_seed)
        true (a = b))
    out_seq out_par

(* The ISSUE-6 acceptance property: forking every scenario from a shared
   post-boot snapshot (restore + reseed instead of rebooting) is
   outcome-for-outcome identical to the from-scratch sequential run, at
   every job count — the snapshot carries the *whole* machine, so the
   only thing that may differ is the wall clock. *)
let test_campaign_from_snapshot_equals_scratch () =
  let _, scratch = Fault_campaign.run ~jobs:1 ~base_seed:5000 ~n:6 () in
  List.iter
    (fun jobs ->
      let bad, forked =
        Fault_campaign.run ~jobs ~from_snapshot:true ~base_seed:5000 ~n:6 ()
      in
      Alcotest.(check int)
        (Printf.sprintf "violations (jobs=%d)" jobs)
        0 bad;
      Alcotest.(check int)
        (Printf.sprintf "outcome count (jobs=%d)" jobs)
        (List.length scratch) (List.length forked);
      List.iter2
        (fun a b ->
          Alcotest.(check int) "seed order" a.Fault_campaign.oc_seed
            b.Fault_campaign.oc_seed;
          Alcotest.(check bool)
            (Printf.sprintf "forked outcome for seed %d identical (jobs=%d)"
               a.Fault_campaign.oc_seed jobs)
            true (a = b))
        scratch forked)
    [ 1; 2; 4 ]

let () =
  Alcotest.run "cheriot_farm"
    [
      ( "farm",
        [
          Alcotest.test_case "results in submission order" `Quick
            test_order_preserved;
          Alcotest.test_case "jobs=1 runs in calling domain" `Quick
            test_jobs_one_stays_home;
          Alcotest.test_case "lowest-index exception wins" `Quick
            test_lowest_index_exception;
          Alcotest.test_case "map/map_list preserve order" `Quick
            test_map_variants;
          Alcotest.test_case "empty input and jobs clamping" `Quick
            test_empty_and_clamp;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "parallel campaign == sequential" `Slow
            test_campaign_parallel_equals_sequential;
          Alcotest.test_case "from-snapshot campaign == from-scratch" `Slow
            test_campaign_from_snapshot_equals_scratch;
        ] );
    ]
