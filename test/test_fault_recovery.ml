(* §5.2 fault recovery: a crash injected at the compartment-call
   boundary is contained — the caller sees an error return, the victim's
   error handler micro-reboots it, and its heap quota comes back whole.
   The second test drives the same path through the fault-injection
   engine instead of a hand-placed hook. *)

module Cap = Capability
module F = Firmware

let iv = Interp.int_value
let ti = Interp.to_int

let svc_quota = 4096

let firmware () =
  System.image ~name:"fault-recovery"
    ~sealed_objects:[ Allocator.alloc_capability ~name:"svcq" ~quota:svc_quota ]
    ~threads:
      [
        F.thread ~name:"main" ~comp:"app" ~entry:"main" ~stack_size:4096
          ~trusted_stack_frames:16 ();
      ]
    [
      F.compartment "app" ~globals_size:16
        ~entries:[ F.entry "main" ~arity:0 ~min_stack:1024 ]
        ~imports:
          (System.standard_imports @ [ F.Call { comp = "svc"; entry = "work" } ]);
      F.compartment "svc" ~globals_size:16 ~error_handler:true
        ~entries:[ F.entry "work" ~arity:0 ~min_stack:512 ]
        ~imports:
          (System.standard_imports @ [ F.Static_sealed { target = "svcq" } ]);
    ]

let sealed_quota k =
  let l = Loader.find_comp (Kernel.loader k) "svc" in
  Machine.load_cap (Kernel.machine k) ~auth:l.Loader.lc_import_cap
    ~addr:(Loader.import_slot_addr l (Loader.import_slot l "sealed:svcq"))

(* A service that accumulates heap state, capped so the quota never
   legitimately runs out, with a micro-rebooting error handler. *)
let install_svc k ~cap_live =
  let machine = Kernel.machine k in
  ignore machine;
  Kernel.snapshot_globals k ~comp:"svc";
  let svc_live = ref [] in
  Kernel.implement1 k ~comp:"svc" ~entry:"work" (fun ctx _ ->
      (match Allocator.allocate ctx ~alloc_cap:(sealed_quota k) 128 with
      | Ok c ->
          svc_live := !svc_live @ [ c ];
          if List.length !svc_live > cap_live then begin
            match !svc_live with
            | oldest :: rest ->
                svc_live := rest;
                ignore (Allocator.free ctx ~alloc_cap:(sealed_quota k) oldest)
            | [] -> ()
          end
      | Error _ -> ());
      iv (List.length !svc_live));
  Kernel.set_error_handler k ~comp:"svc" (fun cctx _fi ->
      Microreboot.perform cctx ~comp:"svc"
        {
          Microreboot.wake_blocked = (fun () -> ());
          release_heap =
            (fun () ->
              ignore (Allocator.free_all cctx ~alloc_cap:(sealed_quota k)));
          reset_state = (fun () -> svc_live := []);
        };
      `Unwind)

let test_injected_crash_recovers () =
  let machine = Machine.create () in
  let sys = Result.get_ok (System.boot ~machine (firmware ())) in
  let k = sys.System.kernel in
  install_svc k ~cap_live:8;
  let crash_next = ref false in
  Kernel.set_call_fault_hook k
    (Some
       (fun ~comp ~entry:_ ->
         if comp = "svc" && !crash_next then begin
           crash_next := false;
           true
         end
         else false));
  Kernel.implement1 k ~comp:"app" ~entry:"main" (fun ctx _ ->
      (* Build up service heap state. *)
      Alcotest.(check int) "first call" 1
        (ti (Result.get_ok (Kernel.call1 ctx ~import:"svc.work" [])));
      Alcotest.(check int) "second call" 2
        (ti (Result.get_ok (Kernel.call1 ctx ~import:"svc.work" [])));
      (match Allocator.quota_remaining ctx ~alloc_cap:(sealed_quota k) with
      | Ok r -> Alcotest.(check bool) "quota charged" true (r < svc_quota)
      | Error e -> Alcotest.failf "quota_remaining: %a" Allocator.pp_err e);
      (* Crash at the next call boundary: the caller must get the error
         path, not a hang or a fault of its own. *)
      crash_next := true;
      (match Kernel.call1 ctx ~import:"svc.work" [] with
      | Error Kernel.Fault_in_callee -> ()
      | Ok _ -> Alcotest.fail "injected crash did not surface"
      | Error e -> Alcotest.failf "unexpected error: %a" Kernel.pp_call_error e);
      Alcotest.(check int) "one micro-reboot ran" 1
        (Microreboot.count k ~comp:"svc");
      (match Allocator.quota_remaining ctx ~alloc_cap:(sealed_quota k) with
      | Ok r -> Alcotest.(check int) "quota fully restored" svc_quota r
      | Error e -> Alcotest.failf "quota_remaining: %a" Allocator.pp_err e);
      (* Pristine state: the counter restarts from one. *)
      Alcotest.(check int) "fresh service state" 1
        (ti (Result.get_ok (Kernel.call1 ctx ~import:"svc.work" [])));
      Cap.null);
  System.run ~until_cycles:500_000_000 sys

let test_engine_crash_storm_recovers () =
  let machine = Machine.create () in
  let engine =
    Fault_inject.create ~period:3_000
      ~weights:[ (Fault_inject.Crash, 1) ]
      ~seed:7 machine
  in
  let sys = Result.get_ok (System.boot ~machine (firmware ())) in
  let k = sys.System.kernel in
  let alloc = sys.System.alloc in
  install_svc k ~cap_live:3;
  Fault_inject.wire_kernel engine k ~victims:[ "svc" ];
  Fault_inject.observe_reboots engine;
  let ok = ref 0 and failed = ref 0 and final_ok = ref false in
  Kernel.implement1 k ~comp:"app" ~entry:"main" (fun ctx _ ->
      Fault_inject.arm engine;
      for _ = 1 to 20 do
        (match Kernel.call1 ctx ~import:"svc.work" [] with
        | Ok _ -> incr ok
        | Error _ -> incr failed);
        Kernel.sleep ctx 2_000
      done;
      Fault_inject.disarm engine;
      (match Kernel.call1 ctx ~import:"svc.work" [] with
      | Ok _ -> final_ok := true
      | Error _ -> ());
      Cap.null);
  System.run ~until_cycles:500_000_000 sys;
  Fault_inject.detach engine;
  Alcotest.(check bool) "crashes were delivered" true (!failed > 0);
  Alcotest.(check bool) "service survived between crashes" true (!ok > 0);
  Alcotest.(check bool) "service restored after the storm" true !final_ok;
  Alcotest.(check bool) "micro-reboots ran" true
    (Microreboot.count k ~comp:"svc" >= 1);
  (match Allocator.check_integrity alloc with
  | Ok () -> ()
  | Error e -> Alcotest.failf "allocator integrity: %s" e);
  match
    Allocator.check_quota_conservation alloc
      ~quotas:[ ("svcq", Cap.base (sealed_quota k) + 8) ]
  with
  | Ok () -> ()
  | Error e -> Alcotest.failf "quota conservation: %s" e

let suite =
  [
    Alcotest.test_case "injected crash recovers" `Quick
      test_injected_crash_recovers;
    Alcotest.test_case "engine crash storm recovers" `Quick
      test_engine_crash_storm_recovers;
  ]

let () = Alcotest.run "cheriot_fault_recovery" [ ("fault-recovery", suite) ]
