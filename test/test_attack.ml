(* The differential attack campaigns (lib/attack): pinned per-family
   verdicts on both models, negative controls, and the determinism
   contract — an outcome is a pure function of (family, model, seed,
   armed), byte-identical across runs and across --jobs values. *)

let verdict = Alcotest.testable
    (fun ppf v -> Fmt.string ppf (Attack.verdict_name v))
    ( = )

let check_verdict ?armed ~family ~model ~seed expected =
  let o = Attack.run_one ?armed ~family ~model ~seed () in
  Alcotest.check verdict
    (Printf.sprintf "%s on %s, seed %d" (Attack.family_name family)
       (Attack.model_name model) seed)
    expected o.Attack.at_verdict;
  o

(* --- one hand-built scenario per family, both models ------------- *)

(* Use-after-free: both reach-back variants trap on CHERIoT (the
   freed granule is revoked, so the dereference faults before any
   revoker pass); the baseline's immediate-reuse allocator hands the
   chunk to the victim, so the dangling read steals the reused session
   (Owned) and the dangling write corrupts it (Corrupted_neighbour). *)
let test_uaf () =
  ignore
    (check_verdict ~family:Attack.Uaf_reachback ~model:Attack.Cheriot ~seed:2
       Attack.Trapped);
  let stash =
    check_verdict ~family:Attack.Uaf_reachback ~model:Attack.Cheriot ~seed:3
      Attack.Trapped
  in
  Alcotest.(check bool)
    "cheriot uaf trap leaves a crash dump naming the attacker" true
    (List.exists
       (fun d -> d.Forensics.d_comp = "attacker")
       stash.Attack.at_dumps);
  ignore
    (check_verdict ~family:Attack.Uaf_reachback ~model:Attack.Mpu ~seed:2
       Attack.Owned);
  ignore
    (check_verdict ~family:Attack.Uaf_reachback ~model:Attack.Mpu ~seed:3
       Attack.Corrupted_neighbour)

(* Type confusion: dereferencing the sealed capability traps; handing
   a wrong-typed or forged handle to the service is contained by
   token_unseal.  The baseline service trusts raw address handles, so
   the attacker reads the secret or smashes the canary through it. *)
let test_type_confusion () =
  ignore
    (check_verdict ~family:Attack.Type_confusion ~model:Attack.Cheriot ~seed:3
       Attack.Trapped);
  ignore
    (check_verdict ~family:Attack.Type_confusion ~model:Attack.Cheriot ~seed:4
       Attack.Contained);
  ignore
    (check_verdict ~family:Attack.Type_confusion ~model:Attack.Cheriot ~seed:5
       Attack.Contained);
  ignore
    (check_verdict ~family:Attack.Type_confusion ~model:Attack.Mpu ~seed:2
       Attack.Owned);
  ignore
    (check_verdict ~family:Attack.Type_confusion ~model:Attack.Mpu ~seed:3
       Attack.Corrupted_neighbour)

(* Malformed frames: the armed claim is always >= 80 > the 64-byte
   reassembly buffer, so CHERIoT's exactly-bounded allocation traps the
   copy in netd (and the injected frame is in the input journal); the
   baseline parser overruns into the canary (write variant) or echoes
   the secret into the reply ring (read variant, claim permitting). *)
let test_frame_overflow () =
  let o =
    check_verdict ~family:Attack.Frame_overflow ~model:Attack.Cheriot ~seed:1
      Attack.Trapped
  in
  Alcotest.(check bool) "netd took the bounds trap" true
    (List.exists
       (fun d ->
         d.Forensics.d_comp = "netd" && d.Forensics.d_cause = "bounds violation")
       o.Attack.at_dumps);
  Alcotest.(check bool) "the malformed frame is journaled" true
    (List.exists
       (fun l ->
         Astring.String.is_infix ~affix:"frame " l)
       o.Attack.at_journal);
  ignore
    (check_verdict ~family:Attack.Frame_overflow ~model:Attack.Mpu ~seed:2
       Attack.Corrupted_neighbour);
  ignore
    (check_verdict ~family:Attack.Frame_overflow ~model:Attack.Mpu ~seed:1
       Attack.Owned)

(* Secret exfiltration: the switcher zeroes stack windows on call and
   return, so rummaging the shared stack finds nothing (Contained);
   the out-of-bounds read variant traps.  The baseline leaks through
   the unzeroed shared stack and through region rounding. *)
let test_secret_exfil () =
  ignore
    (check_verdict ~family:Attack.Secret_exfil ~model:Attack.Cheriot ~seed:2
       Attack.Contained);
  ignore
    (check_verdict ~family:Attack.Secret_exfil ~model:Attack.Cheriot ~seed:1
       Attack.Trapped);
  ignore
    (check_verdict ~family:Attack.Secret_exfil ~model:Attack.Mpu ~seed:2
       Attack.Owned);
  ignore
    (check_verdict ~family:Attack.Secret_exfil ~model:Attack.Mpu ~seed:1
       Attack.Owned)

(* --- negative controls ------------------------------------------- *)

(* The same scenarios with the payload disarmed must classify Benign on
   both models: an oracle that flags its own instrumentation (the
   planted secret, the canary allocation, the honest frame) would show
   up here. *)
let test_negative_controls () =
  List.iter
    (fun family ->
      List.iter
        (fun model ->
          List.iter
            (fun seed ->
              ignore
                (check_verdict ~armed:false ~family ~model ~seed Attack.Benign))
            [ 10; 11 ])
        Attack.models)
    Attack.families

(* --- determinism -------------------------------------------------- *)

(* Everything the oracle reports — verdict, evidence, journal, cycles,
   crash-dump fields — is a pure function of (family, model, seed,
   armed). *)
let fingerprint o =
  let dump d =
    Printf.sprintf "%s|%d|%s|%d|%d|%s|%b" d.Forensics.d_comp
      d.Forensics.d_thread d.Forensics.d_cause d.Forensics.d_addr
      d.Forensics.d_pc d.Forensics.d_instr d.Forensics.d_handler_ran
  in
  (Attack.verdict_name o.Attack.at_verdict, o.Attack.at_cycles,
   o.Attack.at_evidence, o.Attack.at_journal,
   List.map dump o.Attack.at_dumps)

let prop_outcome_deterministic =
  let gen =
    QCheck.make
      ~print:(fun (f, m, seed, armed) ->
        Printf.sprintf "%s:%s:%d armed=%b" (Attack.family_name f)
          (Attack.model_name m) seed armed)
      QCheck.Gen.(
        let* f = oneofl Attack.families in
        let* m = oneofl Attack.models in
        let* seed = 1 -- 500 in
        let* armed = bool in
        return (f, m, seed, armed))
  in
  QCheck.Test.make
    ~name:"same seed => identical verdict, evidence, journal, dump fields"
    ~count:12 gen
    (fun (family, model, seed, armed) ->
      let a = Attack.run_one ~armed ~family ~model ~seed () in
      let b = Attack.run_one ~armed ~family ~model ~seed () in
      fingerprint a = fingerprint b)

(* The matrix is byte-identical for every --jobs value, and ordered
   family-major / model / seed. *)
let test_matrix_jobs_invariant () =
  let m1 = Attack.run_matrix ~jobs:1 ~base_seed:1 ~n:4 () in
  let m3 = Attack.run_matrix ~jobs:3 ~base_seed:1 ~n:4 () in
  Alcotest.(check int) "same cell count" (List.length m1) (List.length m3);
  List.iter2
    (fun a b ->
      Alcotest.(check bool)
        (Printf.sprintf "cell %s:%s:%d identical across jobs"
           (Attack.family_name a.Attack.at_family)
           (Attack.model_name a.Attack.at_model) a.Attack.at_seed)
        true
        (a.Attack.at_family = b.Attack.at_family
        && a.Attack.at_model = b.Attack.at_model
        && a.Attack.at_seed = b.Attack.at_seed
        && fingerprint a = fingerprint b))
    m1 m3;
  Alcotest.(check string)
    "rendered matrix identical across jobs" (Attack.render_matrix m1)
    (Attack.render_matrix m3)

(* --- the differential claim -------------------------------------- *)

let test_strictly_better () =
  let outcomes = Attack.run_matrix ~jobs:2 ~base_seed:1 ~n:6 () in
  let better = Attack.cheriot_strictly_better outcomes in
  Alcotest.(check (list string))
    "cheriot strictly better on every family"
    (List.map Attack.family_name Attack.families)
    (List.map Attack.family_name better);
  (* every containment failure is a baseline cell and carries evidence *)
  let failures = Attack.containment_failures outcomes in
  Alcotest.(check bool) "failures exist on the baseline" true (failures <> []);
  List.iter
    (fun o ->
      Alcotest.(check string)
        "no containment failure on cheriot" "mpu"
        (Attack.model_name o.Attack.at_model);
      Alcotest.(check bool) "failure carries evidence" true
        (o.Attack.at_evidence <> []))
    failures

let suite =
  [
    Alcotest.test_case "uaf reach-back, both models" `Quick test_uaf;
    Alcotest.test_case "interface type confusion, both models" `Quick
      test_type_confusion;
    Alcotest.test_case "malformed-frame overflow, both models" `Quick
      test_frame_overflow;
    Alcotest.test_case "stack-secret exfiltration, both models" `Quick
      test_secret_exfil;
    Alcotest.test_case "negative controls are benign everywhere" `Quick
      test_negative_controls;
    Qcheck_seed.to_alcotest prop_outcome_deterministic;
    Alcotest.test_case "matrix byte-identical across --jobs" `Quick
      test_matrix_jobs_invariant;
    Alcotest.test_case "cheriot strictly better, failures replayable" `Quick
      test_strictly_better;
  ]

let () = Alcotest.run "cheriot_attack" [ ("attack", suite) ]
