# Convenience targets; everything is plain dune underneath.

.PHONY: all build test test-seeds report-smoke profile-smoke replay-smoke attack-smoke ci campaign campaign-par bench perf perf-gate alloc-gate clean

all: build

build:
	dune build

# Quick tests: the full suite, with the fault campaign in its 8-scenario
# quick mode (FAULT_CAMPAIGN_ITERS unset).  Includes the golden
# simulated-cycles regression (bench/golden_cycles.expected).
test:
	dune runtest

# Re-run every QCheck property suite under several explicit seeds
# (the suites read QCHECK_SEED; a failure prints the seed to replay).
SEEDS ?= 1 7 42 1234 987654321
PROP_TESTS = test_cap_props test_alloc_props test_mem_props test_obs_props \
	test_forensics test_interp_equiv test_snapshot_equiv test_attack

test-seeds: build
	@for s in $(SEEDS); do \
	  for t in $(PROP_TESTS); do \
	    echo "== QCHECK_SEED=$$s $$t =="; \
	    QCHECK_SEED=$$s dune exec test/$$t.exe >/dev/null || exit 1; \
	  done; \
	done; echo "test-seeds: all property suites passed under seeds: $(SEEDS)"

# Flight-recorder smoke: the per-compartment health report of the fixed
# workload must match the committed golden byte-for-byte, and a crash
# replay of a campaign seed must produce dumps without erroring.
report-smoke: build
	dune exec bench/main.exe -- report producer_consumer | diff test/golden_report.expected -
	dune exec bench/main.exe -- crashdump 7 >/dev/null
	@echo "report-smoke: report matches golden, crashdump replays"

# Profiler smoke: the exact-attribution folded stacks of the fixed
# workload must match the committed golden byte-for-byte (the profile
# command itself exits non-zero if the total weight does not reconcile
# with Machine.cycles), and sampled mode must produce well-formed
# output without erroring.
profile-smoke: build
	@dune exec bench/main.exe -- profile producer_consumer 2>/dev/null | diff test/golden_profile.expected -
	@dune exec bench/main.exe -- profile producer_consumer --interval 100 >/dev/null 2>&1
	@echo "profile-smoke: folded stacks match golden, weight reconciles"

# Record-replay smoke: journal a campaign scenario's input stream,
# re-run it under bit-exact verification, and diff the journal against
# the committed golden (any drift in IRQ timing, frame delivery or
# fault-injection order fails; regenerate the golden with the same
# record command after a deliberate model change).
replay-smoke: build
	@dune exec bench/main.exe -- replay record 7 _build/replay7.journal >/dev/null
	@dune exec bench/main.exe -- replay verify 7 _build/replay7.journal
	@diff test/golden_campaign7.journal _build/replay7.journal
	@echo "replay-smoke: journal verified and matches golden"

# Differential-security smoke: the containment matrix at --jobs 4 must
# be byte-identical to the sequential run (CHERIoT scenarios fork from
# a shared post-boot snapshot per chunk, so this also pins the
# snapshot-fork == fresh-boot equivalence), and must match the
# committed golden (dune promote accepts a deliberate verdict change).
attack-smoke: build
	@dune exec bench/main.exe -- attack-matrix --seed 1 --n 6 --jobs 1 2>/dev/null > _build/attack_j1.out
	@dune exec bench/main.exe -- attack-matrix --seed 1 --n 6 --jobs 4 2>/dev/null > _build/attack_j4.out
	@diff _build/attack_j1.out _build/attack_j4.out
	@diff test/golden_attack_matrix.expected _build/attack_j1.out
	@dune exec bench/main.exe -- attack-matrix --seed 1 --n 6 --jobs 1 --fleet-metrics 2>/dev/null > _build/attack_fm_j1.out
	@dune exec bench/main.exe -- attack-matrix --seed 1 --n 6 --jobs 4 --fleet-metrics 2>/dev/null > _build/attack_fm_j4.out
	@diff _build/attack_fm_j1.out _build/attack_fm_j4.out
	@echo "attack-smoke: --jobs 4 identical to --jobs 1 (with and without fleet metrics), matrix matches golden"

ci: build test test-seeds report-smoke profile-smoke replay-smoke campaign-par attack-smoke perf-gate alloc-gate perf

# Long mode: 200 seeded scenarios (override with FAULT_CAMPAIGN_ITERS=n).
# Farmed across all cores by default; --jobs 1 forces the sequential path.
campaign:
	dune exec bench/main.exe -- campaign

# Farm determinism smoke: an 8-scenario campaign at --jobs 4 must be
# byte-identical to the sequential run (the farm's ordering contract,
# plus the no-cross-machine-global-state invariant from DESIGN.md).
campaign-par: build
	@FAULT_CAMPAIGN_ITERS=8 dune exec bench/main.exe -- campaign --jobs 1 2>/dev/null > _build/campaign_j1.out
	@FAULT_CAMPAIGN_ITERS=8 dune exec bench/main.exe -- campaign --jobs 4 2>/dev/null > _build/campaign_j4.out
	@diff _build/campaign_j1.out _build/campaign_j4.out
	@FAULT_CAMPAIGN_ITERS=8 dune exec bench/main.exe -- campaign --jobs 1 --fleet-metrics 2>/dev/null > _build/campaign_fm_j1.out
	@FAULT_CAMPAIGN_ITERS=8 dune exec bench/main.exe -- campaign --jobs 4 --fleet-metrics 2>/dev/null > _build/campaign_fm_j4.out
	@diff _build/campaign_fm_j1.out _build/campaign_fm_j4.out
	@echo "campaign-par: --jobs 4 output identical to --jobs 1 (with and without fleet metrics)"

bench:
	dune exec bench/main.exe

# Regression gate for the superblock engine: best-of-3 ns/instr on the
# tight loop must beat the pre-decoded engine by at least
# PERF_GATE_MIN_RATIO (default 1.5; the committed baseline records ~2x
# on the reference host — the gate is set below that so CI noise on
# shared runners doesn't flap, while a real regression to parity still
# fails loudly).
perf-gate: build
	dune exec bench/main.exe -- perf-gate

# Allocation gate for the packed capability register file: the warm
# (second) run of the tight loop — segments decoded, superblocks
# compiled, memo caches filled — must allocate at most
# ALLOC_GATE_MAX_WORDS (default 0.01) minor-heap words per simulated
# instruction on the superblock engine; the committed baseline is
# exactly 0.  Legacy/predecode are reported but not gated (their
# memory arms box the authority capability by design).
alloc-gate: build
	dune exec bench/main.exe -- alloc-gate

# Host-performance check: times the tier-1 suite, then runs the
# interpreter/scenario/campaign microbenchmarks and prints the delta
# against the committed baseline (BENCH_core.json) on stderr.
perf: build
	@t0=$$(date +%s.%N); dune runtest --force >/dev/null 2>&1; \
	t1=$$(date +%s.%N); \
	BENCH_RUNTEST_S=$$(printf '%.3f' $$(echo "$$t1 $$t0" | awk '{print $$1-$$2}')) \
	  dune exec bench/main.exe -- perf-json

clean:
	dune clean
