# Convenience targets; everything is plain dune underneath.

.PHONY: all build test ci campaign bench clean

all: build

build:
	dune build

# Quick tests: the full suite, with the fault campaign in its 8-scenario
# quick mode (FAULT_CAMPAIGN_ITERS unset).
test:
	dune runtest

ci: build test

# Long mode: 200 seeded scenarios (override with FAULT_CAMPAIGN_ITERS=n).
campaign:
	dune exec bench/main.exe -- campaign

bench:
	dune exec bench/main.exe

clean:
	dune clean
